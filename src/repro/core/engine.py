"""Shared optimizer engine for the FairKM family.

:class:`OptimizerEngine` owns the fit lifecycle that used to be
duplicated between ``FairKM.fit`` and ``MiniBatchFairKM.fit`` — input
validation, λ resolution, initialization, the sweep loop, convergence
detection, history bookkeeping and result construction. What varies
between optimizers is *how one pass over the objects is executed*, which
is delegated to a pluggable :class:`SweepStrategy`:

* :class:`SequentialSweep` — the paper's Algorithm 1 literally: visit
  each object, score it against every cluster with
  :meth:`~repro.core.state.ClusterState.move_deltas`, apply the best
  improving move immediately.
* :class:`ChunkedSweep` — the vectorized *exact* sweep. Whole chunks are
  scored at once via
  :meth:`~repro.core.state.ClusterState.batch_move_deltas`; moves are
  still applied one at a time, and any move invalidates the frozen
  scores of the objects still pending in the chunk, so the remainder is
  re-scored against the updated statistics. Decisions are therefore
  identical to :class:`SequentialSweep` (same visit order, same state at
  every decision) while the per-object NumPy overhead of the sequential
  loop is amortized across chunks. Sweeps with few moves — the long tail
  of any FairKM run — collapse to a handful of vectorized batch calls.
* :class:`MiniBatchSweep` — the §6.1 approximation: all objects of a
  batch decide against statistics frozen at the batch start, accepted
  moves are applied together, then the caches are rebuilt.

The engine also fixes a reporting subtlety: ``objective_history``
entries are recorded *after* the periodic
:meth:`~repro.core.state.ClusterState.resync`, so reported objectives
never include accumulated floating-point drift from the incremental
cache updates.
"""

from __future__ import annotations

import numpy as np

from ..cluster.init import initial_labels
from .attributes import CategoricalSpec, NumericSpec
from .config import FairKMConfig, FairKMResult
from .lambda_heuristic import resolve_lambda
from .state import ClusterState


class SweepStrategy:
    """One pass over the objects of a FairKM-style local search.

    A strategy mutates *state* in place and returns the number of
    accepted moves. Strategies may keep per-fit adaptive state;
    :meth:`reset` is called by the engine at the start of every fit.
    """

    #: Registry name; subclasses override.
    name = "base"

    def reset(self) -> None:
        """Clear any adaptive per-fit state (called once per fit)."""

    def sweep(
        self, state: ClusterState, order: np.ndarray, lam: float, cfg: FairKMConfig
    ) -> int:
        """Visit the objects in *order* once; return accepted moves."""
        raise NotImplementedError


class SequentialSweep(SweepStrategy):
    """Point-at-a-time round-robin pass (paper Steps 4–7)."""

    name = "sequential"

    def sweep(
        self, state: ClusterState, order: np.ndarray, lam: float, cfg: FairKMConfig
    ) -> int:
        moves = 0
        for i in order:
            i = int(i)
            if not cfg.allow_empty and state.sizes[state.labels[i]] == 1:
                continue
            deltas = state.move_deltas(i, lam)
            target = int(np.argmin(deltas))
            if target != state.labels[i] and deltas[target] < -cfg.tol:
                state.apply_move(i, target)
                moves += 1
        return moves


class ChunkedSweep(SweepStrategy):
    """Vectorized chunked-exact sweep.

    Objects are scored a chunk at a time with ``batch_move_deltas``
    (frozen statistics), then scanned in visit order. Until a move is
    accepted, the frozen scores equal what ``move_deltas`` would have
    returned — the statistics have not changed — so non-movers are
    dispatched purely vectorized. An accepted move (source → target)
    perturbs exactly two clusters' statistics, so the frozen rows of the
    objects still pending are repaired surgically: objects whose own
    cluster was touched get their full row re-scored, every other
    pending row only has its *source* and *target* columns recomputed
    (:meth:`~repro.core.state.ClusterState.batch_move_deltas_cols`).
    After each repair the pending scores again equal what the sequential
    sweep would compute at its visit time, so the decision sequence —
    visit order, accepted moves, chosen targets — is exactly the
    sequential sweep's.

    Truly dense phases (the shuffle after a random init, where most
    objects move) would still pay one repair per move for little gain;
    the strategy therefore falls back to the sequential inner loop
    whenever the previous iteration's move rate exceeded
    ``dense_threshold``, and mid-sweep if the realized rate crosses it.
    The first iteration after ``reset`` (unknown rate) runs sequentially
    as well.

    The window actually scored per batch call shrinks adaptively in
    movey sweeps (≈ ``4 / move_rate``, floored at 32): every accepted
    move repairs the rows still pending in its window, so bounding the
    expected moves per window bounds the repair work.

    Args:
        chunk_size: maximum objects scored per vectorized batch call.
        dense_threshold: move rate above which the sweep runs the
            sequential inner loop instead of chunk scoring.
    """

    name = "chunked"

    #: Window sizing: aim for about this many expected moves per window.
    MOVES_PER_WINDOW = 4.0
    #: Minimum adaptive window; below this the fixed per-call NumPy
    #: overhead of ``batch_move_deltas`` dominates.
    MIN_WINDOW = 32

    def __init__(self, chunk_size: int = 256, dense_threshold: float = 0.4) -> None:
        if chunk_size <= 0:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        if not 0.0 < dense_threshold <= 1.0:
            raise ValueError(
                f"dense_threshold must be in (0, 1], got {dense_threshold}"
            )
        self.chunk_size = int(chunk_size)
        self.dense_threshold = float(dense_threshold)
        self._sequential = SequentialSweep()
        self._prev_rate: float | None = None

    def reset(self) -> None:
        self._prev_rate = None

    def _window(self) -> int:
        rate = self._prev_rate
        if not rate:
            return self.chunk_size
        return min(self.chunk_size, max(self.MIN_WINDOW, int(self.MOVES_PER_WINDOW / rate)))

    def sweep(
        self, state: ClusterState, order: np.ndarray, lam: float, cfg: FairKMConfig
    ) -> int:
        n = order.shape[0]
        if self._prev_rate is None or self._prev_rate > self.dense_threshold:
            moves = self._sequential.sweep(state, order, lam, cfg)
            self._prev_rate = moves / n
            return moves

        window = self._window()
        moves = 0
        for start in range(0, n, window):
            # Mid-sweep safety valve: if this sweep turned out dense
            # after all, stop paying for per-move repairs.
            if start >= 2 * window and moves / start > self.dense_threshold:
                moves += self._sequential.sweep(state, order[start:], lam, cfg)
                break
            moves += self._scan_window(state, order[start : start + window], lam, cfg)
        self._prev_rate = moves / n
        return moves

    @staticmethod
    def _scan_window(
        state: ClusterState, window: np.ndarray, lam: float, cfg: FairKMConfig
    ) -> int:
        """Scan one window in visit order, repairing scores per move."""
        deltas = state.batch_move_deltas(window, lam)
        best = deltas.min(axis=1)
        w = window.shape[0]
        moves = 0
        r = 0
        while True:
            hit = -1
            for off in np.flatnonzero(best[r:] < -cfg.tol):
                rc = r + int(off)
                i = int(window[rc])
                if not cfg.allow_empty and state.sizes[state.labels[i]] == 1:
                    best[rc] = 0.0  # vetoed: visited without moving
                    continue
                hit = rc
                break
            if hit < 0:
                return moves
            i = int(window[hit])
            source = int(state.labels[i])
            target = int(np.argmin(deltas[hit]))
            state.apply_move(i, target)
            moves += 1
            r = hit + 1
            if r >= w:
                return moves
            # Repair the pending rows: the move only changed the source
            # and target clusters' statistics.
            suffix = window[r:]
            cur = state.labels[suffix]
            touched = (cur == source) | (cur == target)
            stale = np.flatnonzero(touched)
            if stale.size:
                deltas[r + stale] = state.batch_move_deltas(suffix[stale], lam)
            fresh = np.flatnonzero(~touched)
            if fresh.size:
                cols = np.array([source, target], dtype=np.int64)
                deltas[(r + fresh)[:, None], cols[None, :]] = (
                    state.batch_move_deltas_cols(suffix[fresh], cols, lam)
                )
            best[r:] = deltas[r:].min(axis=1)


class MiniBatchSweep(SweepStrategy):
    """Batched assignment updates (§6.1 mini-batch approximation).

    Every object of a batch decides against the statistics frozen at the
    batch start; all accepted moves are applied (decisions may have gone
    stale within the batch — that is the approximation), then the caches
    are rebuilt once.
    """

    name = "minibatch"

    def __init__(self, batch_size: int = 256) -> None:
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self.batch_size = int(batch_size)

    def sweep(
        self, state: ClusterState, order: np.ndarray, lam: float, cfg: FairKMConfig
    ) -> int:
        moves = 0
        for start in range(0, order.shape[0], self.batch_size):
            batch = order[start : start + self.batch_size]
            deltas = state.batch_move_deltas(batch, lam)
            targets = np.argmin(deltas, axis=1)
            rows = np.arange(batch.shape[0])
            improves = deltas[rows, targets] < -cfg.tol
            cur = state.labels[batch]
            batch_moves = 0
            for r in np.flatnonzero(improves & (targets != cur)):
                i = int(batch[r])
                if not cfg.allow_empty and state.sizes[state.labels[i]] == 1:
                    continue
                state.apply_move(i, int(targets[r]))
                batch_moves += 1
            if batch_moves:
                state.resync()
            moves += batch_moves
        return moves


#: Engine name -> strategy class, the registry behind ``engine="..."``
#: constructor arguments and the CLI's ``--engine`` flag.
SWEEP_STRATEGIES: dict[str, type[SweepStrategy]] = {
    SequentialSweep.name: SequentialSweep,
    ChunkedSweep.name: ChunkedSweep,
    MiniBatchSweep.name: MiniBatchSweep,
}


def make_sweep(
    engine: str | SweepStrategy, *, chunk_size: int | None = None
) -> SweepStrategy:
    """Resolve an ``engine`` argument into a :class:`SweepStrategy`.

    Args:
        engine: a strategy instance (returned as-is) or a name from
            :data:`SWEEP_STRATEGIES`.
        chunk_size: chunk size for ``"chunked"``; doubles as the batch
            size for ``"minibatch"``. ``None`` keeps each strategy's
            default. Rejected alongside a strategy *instance* — the
            instance already carries its own sizing.
    """
    if isinstance(engine, SweepStrategy):
        if chunk_size is not None:
            raise ValueError(
                "chunk_size cannot be combined with a SweepStrategy instance; "
                "configure the instance directly"
            )
        return engine
    if engine == SequentialSweep.name:
        return SequentialSweep()
    if engine == ChunkedSweep.name:
        return ChunkedSweep() if chunk_size is None else ChunkedSweep(chunk_size)
    if engine == MiniBatchSweep.name:
        return MiniBatchSweep() if chunk_size is None else MiniBatchSweep(chunk_size)
    raise ValueError(
        f"unknown engine {engine!r}; expected one of {sorted(SWEEP_STRATEGIES)} "
        "or a SweepStrategy instance"
    )


def build_result(
    state: ClusterState,
    lam: float,
    n_iter: int,
    converged: bool,
    moves_per_iter: list[int],
    objective_history: list[float],
) -> FairKMResult:
    """Assemble a :class:`FairKMResult` from the final optimizer state."""
    km = state.kmeans_term()
    fair = state.fairness_term()
    return FairKMResult(
        labels=state.labels.copy(),
        centers=state.centroids(),
        objective=km + lam * fair,
        kmeans_term=km,
        fairness_term=fair,
        lambda_=lam,
        n_iter=n_iter,
        converged=converged,
        moves_per_iter=moves_per_iter,
        objective_history=objective_history,
        fractional_representations=state.fractional_representations(),
    )


class OptimizerEngine:
    """The fit lifecycle shared by every FairKM-family optimizer.

    Validates inputs, resolves λ, initializes the assignment, runs the
    configured :class:`SweepStrategy` until convergence or the iteration
    cap, maintains the periodic cache resync and the per-iteration
    history, and builds the result.

    Args:
        config: hyper-parameters of the run.
        sweep: the sweep strategy executing each pass.
        rng: generator driving initialization and per-iteration shuffles.
    """

    def __init__(
        self,
        config: FairKMConfig,
        sweep: SweepStrategy,
        rng: np.random.Generator,
    ) -> None:
        self.config = config
        self.sweep_strategy = sweep
        self._rng = rng

    def fit(
        self,
        points: np.ndarray,
        categorical: list[CategoricalSpec] | None = None,
        numeric: list[NumericSpec] | None = None,
        initial: np.ndarray | None = None,
    ) -> FairKMResult:
        """Run the local search; same contract as ``FairKM.fit``."""
        cfg = self.config
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2:
            raise ValueError(f"points must be 2-D, got shape {points.shape}")
        n = points.shape[0]
        if n < cfg.k:
            raise ValueError(f"need at least k={cfg.k} objects, got {n}")
        lam = resolve_lambda(cfg.lambda_, n, cfg.k)

        if initial is not None:
            labels = np.asarray(initial, dtype=np.int64).copy()
            if labels.shape != (n,):
                raise ValueError(f"initial labels must have shape ({n},)")
        else:
            labels = initial_labels(points, cfg.k, cfg.init, self._rng)

        state = ClusterState(points, labels, cfg.k, categorical, numeric)
        self.sweep_strategy.reset()
        moves_per_iter: list[int] = []
        objective_history: list[float] = []
        converged = False
        n_iter = 0
        for n_iter in range(1, cfg.max_iter + 1):
            order = self._rng.permutation(n) if cfg.shuffle else np.arange(n)
            moves = self.sweep_strategy.sweep(state, order, lam, cfg)
            moves_per_iter.append(moves)
            if cfg.resync_every and n_iter % cfg.resync_every == 0:
                state.resync()
            # Recorded after the periodic resync: reported objectives
            # never carry incremental floating-point drift.
            objective_history.append(state.objective(lam))
            if moves == 0:
                converged = True
                break
        return build_result(state, lam, n_iter, converged, moves_per_iter, objective_history)
