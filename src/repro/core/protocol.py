"""The common clustering-estimator protocol.

Every optimizer in this repo — :class:`~repro.core.FairKM`,
:class:`~repro.core.MiniBatchFairKM`, :class:`~repro.cluster.KMeans` and
the four baselines under :mod:`repro.baselines` — exposes the same
three-method surface so the experiment runner (and any future workload)
can treat them interchangeably:

* ``fit(points, ..., sensitive=None)`` — cluster *points*; sensitive
  attributes arrive through the ``sensitive`` keyword in any form the
  :func:`repro.core.attributes.normalize_sensitive` adapter accepts
  (spec lists, raw code arrays, mappings, or a ``Dataset``). Returns the
  method's native result object and records it on the estimator.
* ``fit_predict(points, sensitive=None, **kwargs)`` — fit and return the
  label vector.
* ``predict(points)`` — route *new* points to the nearest fitted center
  over the non-sensitive attributes. Assignment stays S-blind: fairness
  shaped the centers during training, deployment only reads geometry.

This module is deliberately a leaf (it imports nothing from the rest of
the package at module scope) so that both the core layer and the plain
clustering substrate can depend on it without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Protocol, runtime_checkable

import numpy as np


@runtime_checkable
class ClusteringEstimator(Protocol):
    """Structural type of every clustering method in the repo."""

    def fit(self, points: np.ndarray, **kwargs: Any) -> Any: ...

    def fit_predict(self, points: np.ndarray, **kwargs: Any) -> np.ndarray: ...

    def predict(self, points: np.ndarray) -> np.ndarray: ...


class NotFittedError(RuntimeError):
    """Raised when ``predict``/``labels_`` are used before ``fit``."""


#: Result attributes harvested into exported diagnostics when present.
_DIAGNOSTIC_FIELDS = (
    "objective",
    "kmeans_term",
    "fairness_term",
    "lambda_",
    "inertia",
    "radius",
    "n_iter",
    "converged",
)


@dataclass
class ImportedState:
    """Fitted state revived from an artifact: predict-capable only.

    Carries the centers (all ``predict`` needs) plus the exported
    diagnostics; training labels are gone by design — an imported
    estimator serves assignment, it does not replay its fit.
    """

    centers: np.ndarray
    diagnostics: dict[str, Any] = field(default_factory=dict)

    @property
    def labels(self) -> np.ndarray:
        raise NotFittedError(
            "imported state carries centers only; training labels are not "
            "part of the portable artifact"
        )


class EstimatorMixin:
    """Implements ``fit_predict``/``predict`` on top of a ``fit``.

    A conforming subclass's ``fit`` must set ``self.result_`` to its
    native result object, which needs ``labels`` and ``centers``
    attributes (``centers`` holding coordinates over the non-sensitive
    features).
    """

    result_: Any = None

    def _fitted(self) -> Any:
        if self.result_ is None:
            raise NotFittedError(
                f"{type(self).__name__} is not fitted yet; call fit() first"
            )
        return self.result_

    @property
    def labels_(self) -> np.ndarray:
        """Training-set labels of the last ``fit``."""
        return self._fitted().labels

    @property
    def centers_(self) -> np.ndarray:
        """Cluster centers of the last ``fit`` (non-sensitive features)."""
        return self._fitted().centers

    def fit_predict(self, points: np.ndarray, sensitive: Any = None, **kwargs: Any) -> np.ndarray:
        """Fit on *points* and return the label vector."""
        return self.fit(points, sensitive=sensitive, **kwargs).labels

    def predict(self, points: np.ndarray) -> np.ndarray:
        """Assign *new* points to the nearest fitted center."""
        from ..cluster.distance import nearest_center

        centers = self.centers_
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        if points.shape[1] != centers.shape[1]:
            raise ValueError(
                f"expected {centers.shape[1]} features, got {points.shape[1]}"
            )
        labels, _ = nearest_center(points, centers)
        return labels

    def export_state(self) -> dict[str, Any]:
        """Portable fitted state: centers plus JSON-able diagnostics.

        The artifact layer (:mod:`repro.api.model`) persists exactly
        this. Diagnostics are harvested from whatever scalar facts the
        native result object exposes (see ``_DIAGNOSTIC_FIELDS``), so
        every estimator exports uniformly without per-class glue.
        """
        result = self._fitted()
        # A result may carry its own diagnostics dict (ImportedState, or
        # FairKMResult's per-sweep telemetry); start from its scalar
        # entries so export → import → export round-trips losslessly
        # while structured telemetry (e.g. the per-sweep list) stays on
        # the in-memory result instead of bloating every artifact.
        carried = getattr(result, "diagnostics", None)
        diagnostics: dict[str, Any] = (
            {
                key: value
                for key, value in carried.items()
                if isinstance(value, (bool, int, float, str))
            }
            if isinstance(carried, dict)
            else {}
        )
        for name in _DIAGNOSTIC_FIELDS:
            value = getattr(result, name, None)
            if isinstance(value, np.generic):
                value = value.item()
            if isinstance(value, (bool, int, float)):
                diagnostics[name] = value
        return {
            "centers": np.asarray(result.centers, dtype=np.float64),
            "diagnostics": diagnostics,
        }

    def import_state(self, state: dict[str, Any]) -> "EstimatorMixin":
        """Revive exported state onto this estimator (predict-capable).

        The inverse of :meth:`export_state` for the serving half of the
        protocol: ``predict``/``centers_`` work afterwards, while
        ``labels_`` raises :class:`NotFittedError` (training labels are
        not part of the artifact). Returns ``self`` for chaining.
        """
        centers = np.atleast_2d(np.asarray(state["centers"], dtype=np.float64))
        self.result_ = ImportedState(
            centers=centers, diagnostics=dict(state.get("diagnostics", {}))
        )
        return self
