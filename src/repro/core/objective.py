"""Direct (non-incremental) evaluation of the FairKM objective.

These functions compute Eq. 1 / Eq. 7 / Eq. 22 / Eq. 23 straight from a
label vector, with no cached statistics. They are the ground truth the
incremental engine in :mod:`repro.core.state` is tested against, and they
are cheap enough to call once per fit for reporting.
"""

from __future__ import annotations

import numpy as np

from ..cluster.init import centroids_from_labels
from ..cluster.utils import cluster_sizes, validate_labels
from .attributes import CategoricalSpec, NumericSpec


def kmeans_term(points: np.ndarray, labels: np.ndarray, k: int) -> float:
    """Σ_C Σ_{X∈C} ‖X − mean(C)‖² over the non-sensitive attributes."""
    points = np.asarray(points, dtype=np.float64)
    labels = validate_labels(labels, k, n=points.shape[0])
    centers = centroids_from_labels(points, labels, k)
    diffs = points - centers[labels]
    return float(np.einsum("ij,ij->", diffs, diffs))


def categorical_deviation(spec: CategoricalSpec, labels: np.ndarray, k: int) -> float:
    """Eq. 7's inner sum for one categorical attribute, over all clusters:

        Σ_C (|C|/n)² · Σ_s (Fr_C(s) − Fr_X(s))² / |Values(S)|

    Empty clusters contribute 0 (Eq. 3).
    """
    labels = validate_labels(labels, k, n=spec.codes.shape[0])
    n = labels.shape[0]
    sizes = cluster_sizes(labels, k).astype(np.float64)
    dataset = spec.dataset_distribution
    total = 0.0
    for c in range(k):
        if sizes[c] == 0:
            continue
        counts = np.bincount(spec.codes[labels == c], minlength=spec.n_values)
        frac = counts / sizes[c]
        dev = float(np.sum((frac - dataset) ** 2)) / spec.n_values
        total += (sizes[c] / n) ** 2 * dev
    return total


def numeric_deviation(spec: NumericSpec, labels: np.ndarray, k: int) -> float:
    """Eq. 22's inner sum for one numeric attribute:

        Σ_C (|C|/n)² · (mean_C(S) − mean_X(S))²
    """
    labels = validate_labels(labels, k, n=spec.values.shape[0])
    n = labels.shape[0]
    sizes = cluster_sizes(labels, k).astype(np.float64)
    overall = spec.dataset_mean
    total = 0.0
    for c in range(k):
        if sizes[c] == 0:
            continue
        gap = float(spec.values[labels == c].mean()) - overall
        total += (sizes[c] / n) ** 2 * gap * gap
    return total


def fairness_term(
    categorical: list[CategoricalSpec],
    numeric: list[NumericSpec],
    labels: np.ndarray,
    k: int,
) -> float:
    """deviation_S(C, X): the weighted sum of Eq. 7 and Eq. 22 terms (Eq. 23)."""
    total = 0.0
    for spec in categorical:
        total += spec.weight * categorical_deviation(spec, labels, k)
    for spec in numeric:
        total += spec.weight * numeric_deviation(spec, labels, k)
    return total


def fairkm_objective(
    points: np.ndarray,
    categorical: list[CategoricalSpec],
    numeric: list[NumericSpec],
    labels: np.ndarray,
    k: int,
    lambda_: float,
) -> float:
    """The full FairKM objective O (Eq. 1)."""
    return kmeans_term(points, labels, k) + lambda_ * fairness_term(
        categorical, numeric, labels, k
    )
