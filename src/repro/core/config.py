"""Configuration and result containers for FairKM."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..cluster.init import INIT_STRATEGIES


@dataclass(frozen=True)
class FairKMConfig:
    """Hyper-parameters of a FairKM run.

    Attributes:
        k: number of clusters.
        lambda_: fairness weight λ (Eq. 1); the string ``"auto"`` applies
            the §5.4 heuristic ``(n/k)²``.
        max_iter: cap on round-robin iterations (paper uses 30).
        tol: minimum objective improvement required to accept a move;
            guards against floating-point oscillation.
        init: initial assignment strategy — ``"random"`` (the paper's
            Step 1), ``"kmeans++"`` or ``"random_points"`` (nearest-seed
            assignment).
        allow_empty: when True (paper-faithful, Eq. 3 defines the empty
            cluster's deviation as 0) a move may empty a cluster; when
            False such moves are vetoed.
        shuffle: visit objects in a fresh random order each iteration
            instead of index order. Index order is the paper's literal
            round-robin; shuffling is the standard bias-avoiding variant.
        resync_every: rebuild the incremental caches from scratch every
            this-many iterations (0 disables; 1 is cheap and keeps float
            drift at zero).
    """

    k: int
    lambda_: float | str = "auto"
    max_iter: int = 30
    tol: float = 1e-9
    init: str = "random"
    allow_empty: bool = True
    shuffle: bool = True
    resync_every: int = 1

    def __post_init__(self) -> None:
        if self.k <= 0:
            raise ValueError(f"k must be positive, got {self.k}")
        if self.max_iter <= 0:
            raise ValueError(f"max_iter must be positive, got {self.max_iter}")
        if self.tol < 0:
            raise ValueError(f"tol must be non-negative, got {self.tol}")
        if self.init not in INIT_STRATEGIES:
            raise ValueError(f"init must be one of {INIT_STRATEGIES}, got {self.init!r}")
        if isinstance(self.lambda_, str):
            if self.lambda_ != "auto":
                raise ValueError(f'lambda_ must be a number or "auto", got {self.lambda_!r}')
        elif float(self.lambda_) < 0:
            raise ValueError(f"lambda_ must be non-negative, got {self.lambda_}")
        if self.resync_every < 0:
            raise ValueError(f"resync_every must be non-negative, got {self.resync_every}")


@dataclass
class FairKMResult:
    """Outcome of a FairKM fit.

    Attributes:
        labels: final cluster assignment, shape ``(n,)``.
        centers: cluster prototypes over the non-sensitive attributes.
        objective: final O = K-Means term + λ·fairness term.
        kmeans_term: final coherence loss (the paper's CO of this
            clustering).
        fairness_term: final deviation_S(C, X).
        lambda_: the resolved (numeric) fairness weight used.
        n_iter: iterations executed.
        converged: True when an iteration completed with zero moves.
        moves_per_iter: accepted moves in each iteration.
        objective_history: objective value after each iteration.
        fractional_representations: per sensitive attribute, the final
            Fr_C(s) matrix (k × n_values).
        diagnostics: per-sweep engine telemetry — for each iteration the
            realized move rate plus the sweep strategy's own facts
            (mode, window/batch sizing, scoring vs repair wall time) —
            the measured data cost-model autotuning of the sweep
            constants works from.
    """

    labels: np.ndarray
    centers: np.ndarray
    objective: float
    kmeans_term: float
    fairness_term: float
    lambda_: float
    n_iter: int
    converged: bool
    moves_per_iter: list[int] = field(default_factory=list)
    objective_history: list[float] = field(default_factory=list)
    fractional_representations: dict[str, np.ndarray] = field(default_factory=dict)
    diagnostics: dict = field(default_factory=dict)

    @property
    def k(self) -> int:
        return self.centers.shape[0]

    @property
    def n_nonempty(self) -> int:
        """Number of clusters that ended up with at least one member."""
        return int(np.unique(self.labels).size)

    def assign(self, points: np.ndarray) -> np.ndarray:
        """Assign *new* objects to their nearest cluster prototype.

        Deployment helper: once FairKM has produced a fair clustering,
        incoming records are routed to the nearest prototype over the
        non-sensitive attributes (the fairness term shaped the prototypes
        during training; assignment itself stays S-blind).
        """
        from ..cluster.distance import nearest_center

        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        if points.shape[1] != self.centers.shape[1]:
            raise ValueError(
                f"expected {self.centers.shape[1]} features, got {points.shape[1]}"
            )
        labels, _ = nearest_center(points, self.centers)
        return labels
