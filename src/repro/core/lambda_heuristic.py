"""The λ heuristic of §5.4.

The K-Means term sums one contribution per object while the fairness term
sums one (cluster-level) contribution per cluster, each only 1/(|X|/k)
influenceable by a single object. Balancing the two therefore suggests

    λ = (|X| / k)²

which reproduces the paper's settings: ≈10⁶ for Adult (n = 15 682, k = 5)
and ≈10³ for Kinematics (n = 161, k = 5).
"""

from __future__ import annotations


def default_lambda(n: int, k: int) -> float:
    """Return the paper's recommended fairness weight ``(n/k)²``."""
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    return (n / k) ** 2


def resolve_lambda(lambda_: float | str, n: int, k: int) -> float:
    """Resolve a user-provided λ: a number, or the string ``"auto"``."""
    if isinstance(lambda_, str):
        if lambda_ != "auto":
            raise ValueError(f'lambda_ must be a number or "auto", got {lambda_!r}')
        return default_lambda(n, k)
    value = float(lambda_)
    if value < 0:
        raise ValueError(f"lambda_ must be non-negative, got {value}")
    return value
