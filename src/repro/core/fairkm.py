"""FairKM — Fair K-Means with multiple sensitive attributes (Alg. 1).

The optimizer follows the paper exactly:

1. initialize k clusters (random assignment by default, Step 1–2);
2. repeat until convergence or ``max_iter``: visit every object in
   round-robin fashion, re-assigning it to the cluster that most decreases
   the objective (Step 5, Eqs. 9–19), updating prototypes (Step 6) and
   fractional representations (Step 7) after each move;
3. return the assignment (Step 8).

Move deltas come from :class:`~repro.core.state.ClusterState`, which keeps
sufficient statistics so each candidate evaluation is O(|N| + |S|) instead
of a full objective recomputation.

Example:
    >>> import numpy as np
    >>> from repro.core import FairKM, CategoricalSpec
    >>> rng = np.random.default_rng(0)
    >>> x = np.vstack([rng.normal(0, 1, (50, 2)), rng.normal(6, 1, (50, 2))])
    >>> gender = CategoricalSpec("gender", rng.integers(0, 2, 100))
    >>> result = FairKM(k=2, seed=0).fit(x, categorical=[gender])
    >>> result.labels.shape
    (100,)
"""

from __future__ import annotations

import numpy as np

from ..cluster.init import initial_labels
from .attributes import CategoricalSpec, NumericSpec
from .config import FairKMConfig, FairKMResult
from .lambda_heuristic import resolve_lambda
from .state import ClusterState


class FairKM:
    """Fair K-Means clustering over multiple sensitive attributes.

    Args:
        k: number of clusters.
        lambda_: fairness weight; ``"auto"`` (default) applies the paper's
            ``(n/k)²`` heuristic at fit time.
        max_iter: round-robin iteration cap (paper: 30).
        tol: minimum strict improvement for a move to be accepted.
        init: ``"random"`` | ``"kmeans++"`` | ``"random_points"``.
        allow_empty: permit moves that empty a cluster (paper-faithful).
        shuffle: randomize visiting order each iteration.
        resync_every: rebuild caches every N iterations (0 = never).
        seed: RNG seed or generator for initialization and shuffling.
    """

    def __init__(
        self,
        k: int,
        *,
        lambda_: float | str = "auto",
        max_iter: int = 30,
        tol: float = 1e-9,
        init: str = "random",
        allow_empty: bool = True,
        shuffle: bool = True,
        resync_every: int = 1,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        self.config = FairKMConfig(
            k=k,
            lambda_=lambda_,
            max_iter=max_iter,
            tol=tol,
            init=init,
            allow_empty=allow_empty,
            shuffle=shuffle,
            resync_every=resync_every,
        )
        self._rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)

    def fit(
        self,
        points: np.ndarray,
        categorical: list[CategoricalSpec] | None = None,
        numeric: list[NumericSpec] | None = None,
        initial: np.ndarray | None = None,
    ) -> FairKMResult:
        """Cluster *points* fairly with respect to the sensitive specs.

        Args:
            points: non-sensitive feature matrix ``(n, d_N)``.
            categorical: categorical sensitive attributes.
            numeric: numeric sensitive attributes (Eq. 22 extension).
            initial: optional explicit initial label vector (overrides
                ``init``); useful for warm starts and controlled studies.

        Returns:
            A :class:`FairKMResult`.
        """
        cfg = self.config
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2:
            raise ValueError(f"points must be 2-D, got shape {points.shape}")
        n = points.shape[0]
        if n < cfg.k:
            raise ValueError(f"need at least k={cfg.k} objects, got {n}")
        lam = resolve_lambda(cfg.lambda_, n, cfg.k)

        if initial is not None:
            labels = np.asarray(initial, dtype=np.int64).copy()
            if labels.shape != (n,):
                raise ValueError(f"initial labels must have shape ({n},)")
        else:
            labels = initial_labels(points, cfg.k, cfg.init, self._rng)

        state = ClusterState(points, labels, cfg.k, categorical, numeric)
        moves_per_iter: list[int] = []
        objective_history: list[float] = []
        converged = False
        n_iter = 0
        for n_iter in range(1, cfg.max_iter + 1):
            order = self._rng.permutation(n) if cfg.shuffle else np.arange(n)
            moves = self._sweep(state, order, lam)
            moves_per_iter.append(moves)
            objective_history.append(state.objective(lam))
            if cfg.resync_every and n_iter % cfg.resync_every == 0:
                state.resync()
            if moves == 0:
                converged = True
                break
        return self._build_result(state, lam, n_iter, converged, moves_per_iter, objective_history)

    def _sweep(self, state: ClusterState, order: np.ndarray, lam: float) -> int:
        """One round-robin pass (paper Steps 4–7). Returns accepted moves."""
        cfg = self.config
        moves = 0
        for i in order:
            i = int(i)
            if not cfg.allow_empty and state.sizes[state.labels[i]] == 1:
                continue
            deltas = state.move_deltas(i, lam)
            target = int(np.argmin(deltas))
            if target != state.labels[i] and deltas[target] < -cfg.tol:
                state.apply_move(i, target)
                moves += 1
        return moves

    @staticmethod
    def _build_result(
        state: ClusterState,
        lam: float,
        n_iter: int,
        converged: bool,
        moves_per_iter: list[int],
        objective_history: list[float],
    ) -> FairKMResult:
        km = state.kmeans_term()
        fair = state.fairness_term()
        return FairKMResult(
            labels=state.labels.copy(),
            centers=state.centroids(),
            objective=km + lam * fair,
            kmeans_term=km,
            fairness_term=fair,
            lambda_=lam,
            n_iter=n_iter,
            converged=converged,
            moves_per_iter=moves_per_iter,
            objective_history=objective_history,
            fractional_representations=state.fractional_representations(),
        )


def fairkm_fit(
    points: np.ndarray,
    k: int,
    categorical: list[CategoricalSpec] | None = None,
    numeric: list[NumericSpec] | None = None,
    *,
    seed: int | np.random.Generator | None = None,
    **kwargs,
) -> FairKMResult:
    """Convenience wrapper: ``FairKM(k, seed=seed, **kwargs).fit(...)``."""
    return FairKM(k, seed=seed, **kwargs).fit(points, categorical, numeric)
