"""FairKM — Fair K-Means with multiple sensitive attributes (Alg. 1).

The optimizer follows the paper exactly:

1. initialize k clusters (random assignment by default, Step 1–2);
2. repeat until convergence or ``max_iter``: visit every object in
   round-robin fashion, re-assigning it to the cluster that most decreases
   the objective (Step 5, Eqs. 9–19), updating prototypes (Step 6) and
   fractional representations (Step 7) after each move;
3. return the assignment (Step 8).

The fit lifecycle lives in :class:`~repro.core.engine.OptimizerEngine`;
this class binds it to a sweep strategy. ``engine="sequential"``
(default) is the paper's literal point-at-a-time loop;
``engine="chunked"`` produces the identical decision sequence but scores
whole chunks at once via the vectorized
:meth:`~repro.core.state.ClusterState.batch_move_deltas`, which is the
fast path for large n; ``engine="minibatch"`` is the §6.1 approximation
(also available with its own knobs as
:class:`~repro.core.minibatch.MiniBatchFairKM`).

Move deltas come from :class:`~repro.core.state.ClusterState`, which keeps
sufficient statistics so each candidate evaluation is O(|N| + |S|) instead
of a full objective recomputation.

Example:
    >>> import numpy as np
    >>> from repro.core import FairKM, CategoricalSpec
    >>> rng = np.random.default_rng(0)
    >>> x = np.vstack([rng.normal(0, 1, (50, 2)), rng.normal(6, 1, (50, 2))])
    >>> gender = CategoricalSpec("gender", rng.integers(0, 2, 100))
    >>> result = FairKM(k=2, seed=0).fit(x, categorical=[gender])
    >>> result.labels.shape
    (100,)
"""

from __future__ import annotations

from typing import Any

import numpy as np

from .attributes import CategoricalSpec, NumericSpec, normalize_sensitive
from .config import FairKMConfig, FairKMResult
from .engine import OptimizerEngine, SweepStrategy, make_sweep
from .protocol import EstimatorMixin


class FairKM(EstimatorMixin):
    """Fair K-Means clustering over multiple sensitive attributes.

    Args:
        k: number of clusters.
        lambda_: fairness weight; ``"auto"`` (default) applies the paper's
            ``(n/k)²`` heuristic at fit time.
        max_iter: round-robin iteration cap (paper: 30).
        tol: minimum strict improvement for a move to be accepted.
        init: ``"random"`` | ``"kmeans++"`` | ``"random_points"``.
        allow_empty: permit moves that empty a cluster (paper-faithful).
        shuffle: randomize visiting order each iteration.
        resync_every: rebuild caches every N iterations (0 = never).
        engine: sweep strategy — ``"sequential"`` (paper-literal,
            default), ``"chunked"`` (vectorized, identical decisions) or
            ``"minibatch"`` (§6.1 approximation) — or a
            :class:`~repro.core.engine.SweepStrategy` instance.
        chunk_size: chunk size of the ``"chunked"`` engine (doubles as
            the batch size of ``"minibatch"``); ``None`` keeps the
            strategy default.
        n_jobs: worker threads for the parallel scoring paths of the
            ``"chunked"`` and ``"minibatch"`` engines (1 serial, -1 one
            per CPU). Results are identical for every value; ignored by
            ``"sequential"``.
        backend: execution backend for those parallel scoring paths —
            ``"local"`` (thread pool, default), ``"multiprocess"``
            (worker processes over a shared-memory data placement;
            bit-identical results) or ``"remote-stub"`` (the multi-host
            wire-protocol sketch), or a
            :class:`repro.backend.Backend` instance. Ignored by
            ``"sequential"``.
        workers: worker count for *backend* (int >= 1, -1 or
            ``"auto"`` for one per usable CPU); ``None`` inherits
            ``n_jobs``. Results are identical for every value.
        seed: RNG seed or generator for initialization and shuffling.
    """

    def __init__(
        self,
        k: int,
        *,
        lambda_: float | str = "auto",
        max_iter: int = 30,
        tol: float = 1e-9,
        init: str = "random",
        allow_empty: bool = True,
        shuffle: bool = True,
        resync_every: int = 1,
        engine: str | SweepStrategy = "sequential",
        chunk_size: int | None = None,
        n_jobs: int | None = None,
        backend: str | None = None,
        workers: int | str | None = None,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        self.config = FairKMConfig(
            k=k,
            lambda_=lambda_,
            max_iter=max_iter,
            tol=tol,
            init=init,
            allow_empty=allow_empty,
            shuffle=shuffle,
            resync_every=resync_every,
        )
        self.sweep = make_sweep(
            engine,
            chunk_size=chunk_size,
            n_jobs=workers if workers is not None else n_jobs,
            backend=backend,
        )
        self._rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)

    def fit(
        self,
        points: np.ndarray,
        categorical: list[CategoricalSpec] | None = None,
        numeric: list[NumericSpec] | None = None,
        initial: np.ndarray | None = None,
        *,
        sensitive: Any = None,
    ) -> FairKMResult:
        """Cluster *points* fairly with respect to the sensitive specs.

        Args:
            points: non-sensitive feature matrix ``(n, d_N)``.
            categorical: categorical sensitive attributes.
            numeric: numeric sensitive attributes (Eq. 22 extension).
            initial: optional explicit initial label vector (overrides
                ``init``); useful for warm starts and controlled studies.
            sensitive: protocol-style alternative to ``categorical=`` /
                ``numeric=``: any input accepted by
                :func:`~repro.core.attributes.normalize_sensitive`.

        Returns:
            A :class:`FairKMResult`.
        """
        if sensitive is not None:
            if categorical is not None or numeric is not None:
                raise ValueError(
                    "pass either sensitive= or categorical=/numeric=, not both"
                )
            categorical, numeric = normalize_sensitive(sensitive)
        result = OptimizerEngine(self.config, self.sweep, self._rng).fit(
            points, categorical, numeric, initial
        )
        self.result_ = result
        return result


def fairkm_fit(
    points: np.ndarray,
    k: int,
    categorical: list[CategoricalSpec] | None = None,
    numeric: list[NumericSpec] | None = None,
    *,
    seed: int | np.random.Generator | None = None,
    **kwargs,
) -> FairKMResult:
    """Convenience wrapper: ``FairKM(k, seed=seed, **kwargs).fit(...)``."""
    return FairKM(k, seed=seed, **kwargs).fit(points, categorical, numeric)
