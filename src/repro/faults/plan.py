"""Deterministic, seed-driven fault plans and the injector that fires them.

A :class:`FaultPlan` is a list of :class:`FaultEvent`\\ s, each saying
*where* (a named injection site like ``server.assign``), *when* (the
``at``-th time that site is reached — a counter, not a clock, which is
what makes replays deterministic) and *what* (a fault kind plus an
optional argument). Serving components accept a :class:`FaultInjector`
via an injectable hook; subprocess workers pick theirs up from the
``REPRO_FAULT_PLAN`` environment variable (a JSON plan, or ``@path`` to
a plan file) so a supervisor-spawned fleet can be faulted without any
code path knowing about the test.

Fault kinds and where they bite:

=============  =========================================================
``delay``      sleep ``arg`` seconds before handling (latency injection)
``refuse``     sever the connection before any response byte
               (connect-refused / dead-worker semantics)
``disconnect`` sever mid-response after ``arg`` payload frames, or — at
               proxy lane sites — kill the lane's worker connection at a
               frame boundary and poison the url (dead-lane replay)
``truncate``   stop the response stream mid-frame, then sever
``corrupt``    flip a byte inside a response frame payload
``slow``       slow-loris: sleep ``arg`` seconds around **every** frame
               from this event on (trickled reads/writes)
``skew``       report a mutated model version (proxy version-skew drill)
``sigkill``    | chaos-harness process faults: deliver the signal to the
``sigstop``    | fleet worker whose index is ``arg``
``sigcont``    |
=============  =========================================================

Sites are free-form dotted strings; the components document theirs
(``server.assign``, ``server.stream``, ``server.score``,
``client.request``, ``proxy.lane{n}.frame``, ``proxy.lane.version``,
``backend.score``, ``backend.remote.dispatch``, ``chaos.process``). An injector with no matching event is a no-op, so
hooks cost one dict lookup on the hot path and nothing at all when no
injector is configured.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass
from typing import Any

#: Environment variable carrying a JSON fault plan (or ``@/path/to/plan``)
#: into subprocess workers spawned by a fleet supervisor or a
#: multiprocess training backend.
PLAN_ENV = "REPRO_FAULT_PLAN"

#: Every fault kind a plan may carry.
FAULT_KINDS = frozenset(
    {
        "delay",
        "refuse",
        "disconnect",
        "truncate",
        "corrupt",
        "slow",
        "skew",
        "sigkill",
        "sigstop",
        "sigcont",
    }
)


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: fire *kind* the *at*-th time *site* is hit."""

    site: str
    at: int
    kind: str
    arg: float | None = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{sorted(FAULT_KINDS)}"
            )
        if self.at < 0:
            raise ValueError(f"event index must be >= 0, got {self.at}")

    def to_dict(self) -> dict[str, Any]:
        record: dict[str, Any] = {"site": self.site, "at": self.at, "kind": self.kind}
        if self.arg is not None:
            record["arg"] = self.arg
        return record

    @classmethod
    def from_dict(cls, record: dict[str, Any]) -> "FaultEvent":
        try:
            site, at, kind = record["site"], record["at"], record["kind"]
        except (KeyError, TypeError) as exc:
            raise ValueError(f"malformed fault event record {record!r}") from exc
        return cls(site=str(site), at=int(at), kind=str(kind), arg=record.get("arg"))


class FaultPlan:
    """An immutable schedule of :class:`FaultEvent`\\ s.

    Two events may not share a ``(site, at)`` slot — a plan is a
    function from invocation to fault, not a pile of coin flips, and
    rejecting duplicates at construction keeps replays unambiguous.
    """

    def __init__(self, events: Any = ()) -> None:
        self.events: tuple[FaultEvent, ...] = tuple(
            sorted(events, key=lambda e: (e.site, e.at))
        )
        self._by_site: dict[str, dict[int, FaultEvent]] = {}
        for event in self.events:
            slot = self._by_site.setdefault(event.site, {})
            if event.at in slot:
                raise ValueError(
                    f"duplicate fault event at ({event.site!r}, {event.at})"
                )
            slot[event.at] = event

    def event_at(self, site: str, index: int) -> FaultEvent | None:
        """The event scheduled for the *index*-th hit of *site*, if any."""
        return self._by_site.get(site, {}).get(index)

    def for_site(self, site: str) -> tuple[FaultEvent, ...]:
        return tuple(
            sorted(self._by_site.get(site, {}).values(), key=lambda e: e.at)
        )

    def __len__(self) -> int:
        return len(self.events)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, FaultPlan) and self.events == other.events

    def __hash__(self) -> int:
        return hash(self.events)

    def to_json(self) -> str:
        return json.dumps(
            {"events": [event.to_dict() for event in self.events]},
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        data = json.loads(text)
        if not isinstance(data, dict) or not isinstance(data.get("events"), list):
            raise ValueError("fault plan JSON must be {'events': [...]}")
        return cls(FaultEvent.from_dict(record) for record in data["events"])

    @classmethod
    def from_seed(
        cls,
        seed: int,
        *,
        site: str,
        length: int,
        rates: dict[str, float],
        args: dict[str, tuple[float, float]] | None = None,
    ) -> "FaultPlan":
        """A seed-derived plan: same seed, same schedule, every time.

        For each invocation index in ``range(length)`` one fault fires
        with probability ``sum(rates.values())``, its kind drawn
        proportionally to the per-kind rates and its ``arg`` uniform
        over the ``args[kind]`` interval (where given). Uses its own
        :class:`random.Random` so ambient randomness never leaks in.
        """
        import random

        rng = random.Random(seed)
        kinds = sorted(rates)
        total = sum(rates[kind] for kind in kinds)
        if total > 1.0:
            raise ValueError(f"fault rates sum to {total} > 1")
        events = []
        for index in range(length):
            roll = rng.random()
            acc = 0.0
            for kind in kinds:
                acc += rates[kind]
                if roll < acc:
                    arg = None
                    if args and kind in args:
                        lo, hi = args[kind]
                        arg = rng.uniform(lo, hi)
                    events.append(FaultEvent(site, index, kind, arg))
                    break
        return cls(events)


class _Site:
    __slots__ = ("count",)

    def __init__(self) -> None:
        self.count = 0


class FaultInjector:
    """Thread-safe runtime for one :class:`FaultPlan`.

    Components call :meth:`check` (count the hit, return the scheduled
    event if any) or :meth:`fire` (additionally *acts* on the generic
    ``delay`` kind so call sites stay one line). Sticky lane state —
    "this worker url is dead now" — lives in :meth:`poison` /
    :meth:`poisoned`, which lets a single mid-stream disconnect event
    keep failing the client's transparent retry the way a truly dead
    worker would.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._lock = threading.Lock()
        self._sites: dict[str, _Site] = {}
        self._poisoned: set[str] = set()

    def check(self, site: str) -> FaultEvent | None:
        """Count one hit of *site*; return the event scheduled for it."""
        with self._lock:
            state = self._sites.setdefault(site, _Site())
            index = state.count
            state.count += 1
        return self.plan.event_at(site, index)

    def fire(self, site: str) -> FaultEvent | None:
        """:meth:`check`, plus act on ``delay`` in place.

        Returns the event (including an acted-on delay) so call sites
        can still branch on kinds they implement themselves.
        """
        event = self.check(site)
        if event is not None and event.kind == "delay":
            time.sleep(float(event.arg or 0.0))
        return event

    def count(self, site: str) -> int:
        """How many times *site* has been hit so far."""
        with self._lock:
            state = self._sites.get(site)
            return state.count if state is not None else 0

    def counts(self) -> dict[str, int]:
        """Hit counts for every site touched so far.

        The telemetry collector (:func:`repro.obs.fault_collector`)
        reads this at scrape time — a live view, not a copy kept in
        sync.
        """
        with self._lock:
            return {site: state.count for site, state in self._sites.items()}

    def poison(self, key: str) -> None:
        """Mark a lane (worker url) as sticky-dead for this injector."""
        with self._lock:
            self._poisoned.add(key)

    def poisoned(self, key: str) -> bool:
        with self._lock:
            return key in self._poisoned

    def to_env(self) -> str:
        """The ``REPRO_FAULT_PLAN`` value reproducing this plan."""
        return self.plan.to_json()

    @classmethod
    def from_env(
        cls, environ: Any = None
    ) -> "FaultInjector | None":
        """Build an injector from ``REPRO_FAULT_PLAN``, if set.

        Accepts inline JSON or ``@/path/to/plan.json``. A present but
        unparseable value raises — a typo'd chaos run silently testing
        nothing is worse than a crash.
        """
        value = (environ if environ is not None else os.environ).get(PLAN_ENV)
        if not value:
            return None
        if value.startswith("@"):
            with open(value[1:], encoding="utf-8") as handle:
                value = handle.read()
        return cls(FaultPlan.from_json(value))
