"""Seeded chaos soaks against a live fleet (the ``repro chaos`` CLI).

A :class:`ChaosScenario` is a *seed*, a request count and a handful of
resilience knobs; everything else is derived. From the seed come two
deterministic schedules:

* a **process-fault timeline** (:meth:`ChaosScenario.schedule`):
  SIGSTOP one worker early (a frozen process — alive, accepting
  connections, never answering), SIGCONT it later, SIGKILL the other
  worker mid-soak (a crashed process). Each event is pinned to a
  request index, so the same seed replays the same timeline;
* a **worker-side fault plan** (:meth:`ChaosScenario.worker_plan`):
  seeded ``server.assign`` delays shipped into the worker processes via
  the ``REPRO_FAULT_PLAN`` environment variable, giving the latency
  distribution a tail for the p99 measurement to see.

:func:`run_chaos` spins up a throwaway registry + fleet + proxy, drives
the request loop while delivering the scheduled signals, and measures:

* **availability** — successful requests / all requests;
* **latency** — p50/p99 wall per request, failures included;
* **zero wrong answers** — every *successful* response's labels are
  compared bit-for-bit against in-process ``Assigner.assign`` on the
  same rows. Under chaos a request may fail; it may never lie.

:func:`run_chaos_suite` runs the breaker-on soak next to the identical
breaker-off soak (same seed, same timeline) and writes the schema-valid
``results/BENCH_chaos.json`` — the availability delta between the two
records is the circuit breaker's measured contribution.

:func:`run_remote_fit_soak` is the training-path counterpart: a remote
``POST /score`` fit through a live fleet with a seeded worker SIGKILL
landing mid-fit. The acceptable outcomes form a dichotomy — the fit
either completes **bit-identical** to the local backend (failover
carried it) or raises a typed
:class:`~repro.backend.base.BackendError` (failover exhausted); a fit
that *completes with different numbers* is the one unforgivable
outcome, mirroring the serving soak's "may fail, may never lie" rule.
"""

from __future__ import annotations

import json
import os
import random
import signal
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

from .plan import PLAN_ENV, FaultPlan

#: Suite name under which chaos records are written (its own file,
#: ``BENCH_chaos.json``, validated by the same v1 schema as the perf
#: suites and uploaded by the same CI glob).
CHAOS_SUITE = "chaos"


@dataclass(frozen=True)
class ChaosScenario:
    """One seeded soak: every fault below derives from ``seed``.

    Args:
        seed: drives the process-fault timeline, the worker delay plan,
            the query points and the client's backoff jitter.
        requests: sequential requests in the soak.
        rows: rows per request (small on purpose: the soak measures
            availability under fault, not throughput).
        dim, k: synthetic model geometry.
        workers: fleet size (>= 2 so one worker can die while the other
            carries the traffic).
        breaker: run the proxy with the circuit breaker enabled.
        deadline_ms: per-request budget the client attaches
            (``X-Deadline-Ms``); what turns a frozen worker into a fast
            typed failure instead of a socket-timeout stall.
        breaker_failures: consecutive lane failures that open a breaker.
        breaker_reset_s: breaker cool-down before the half-open probe.
            Deliberately longer than a worker recycle, so the probe
            lands on a healed worker instead of burning a request.
        heartbeat_s / health_timeout_s: fleet monitor cadence and
            health-probe response deadline (the knobs that bound how
            long a frozen worker survives).
        delay_rate: per-request probability of a worker-side injected
            delay (the p99 texture).
        delay_range: seconds drawn uniformly for each injected delay;
            kept under the deadline so delays slow requests without
            failing them.
    """

    seed: int = 0
    requests: int = 250
    rows: int = 512
    dim: int = 16
    k: int = 8
    workers: int = 2
    breaker: bool = True
    deadline_ms: float = 600.0
    breaker_failures: int = 2
    breaker_reset_s: float = 10.0
    heartbeat_s: float = 0.5
    health_timeout_s: float = 2.0
    delay_rate: float = 0.05
    delay_range: tuple[float, float] = (0.02, 0.15)

    def schedule(self) -> list[tuple[int, str, int]]:
        """The seeded process-fault timeline: ``(request_index, kind,
        worker_index)`` rows, sorted by request index.

        Same seed, same timeline — this method is pure, so tests can
        assert reproducibility without running a fleet.
        """
        rng = random.Random(self.seed)
        n = self.requests
        freeze_at = rng.randrange(max(1, n // 8), max(2, n // 5))
        events = [
            (freeze_at, "sigstop", 0),
            (freeze_at + max(2, n // 4), "sigcont", 0),
        ]
        if self.workers > 1:
            kill_at = rng.randrange(n // 2, max(n // 2 + 1, (2 * n) // 3))
            events.append((kill_at, "sigkill", 1))
        return sorted(events)

    def worker_plan(self) -> FaultPlan:
        """The seeded worker-side delay plan (``server.assign`` site)."""
        return FaultPlan.from_seed(
            self.seed,
            site="server.assign",
            # Workers split the traffic unevenly; size the plan so late
            # requests can still draw a delay on a busy worker.
            length=self.requests * 2,
            rates={"delay": self.delay_rate},
            args={"delay": self.delay_range},
        )


@dataclass
class ChaosReport:
    """Outcome of one soak (one :class:`ChaosScenario` execution)."""

    scenario: ChaosScenario
    version: str = ""
    succeeded: int = 0
    failed: int = 0
    wrong: int = 0
    wall_s: float = 0.0
    p50_ms: float = 0.0
    p99_ms: float = 0.0
    restarts: int = 0
    schedule: list[tuple[int, str, int]] = field(default_factory=list)
    errors: dict[str, int] = field(default_factory=dict)

    @property
    def availability(self) -> float:
        total = self.succeeded + self.failed
        return self.succeeded / total if total else 0.0

    def to_record(self) -> Any:
        """This soak as one schema-valid :class:`BenchRecord`."""
        from ..perf.harness import BenchRecord

        scenario = self.scenario
        total_rows = (self.succeeded + self.failed) * scenario.rows
        return BenchRecord(
            workload=(
                "chaos_soak_breaker_on"
                if scenario.breaker
                else "chaos_soak_breaker_off"
            ),
            n=scenario.requests,
            k=scenario.k,
            jobs=scenario.workers,
            wall_s=self.wall_s,
            rows_per_s=total_rows / self.wall_s if self.wall_s > 0 else 0.0,
            extra={
                "seed": scenario.seed,
                "breaker": scenario.breaker,
                "deadline_ms": scenario.deadline_ms,
                "availability": round(self.availability, 6),
                "succeeded": self.succeeded,
                "failed": self.failed,
                "wrong": self.wrong,
                "p50_ms": round(self.p50_ms, 3),
                "p99_ms": round(self.p99_ms, 3),
                "restarts": self.restarts,
                "version": self.version,
                "schedule": [list(event) for event in self.schedule],
                "errors": self.errors,
            },
        )


def _deliver(pid: int | None, kind: str) -> bool:
    """Send one scheduled signal; a recycled/absent pid is not an error."""
    if pid is None:
        return False
    signum = {
        "sigstop": signal.SIGSTOP,
        "sigcont": signal.SIGCONT,
        "sigkill": signal.SIGKILL,
    }[kind]
    try:
        os.kill(pid, signum)
    except (ProcessLookupError, PermissionError):
        return False
    return True


def run_chaos(
    scenario: ChaosScenario, *, state_root: str | Path | None = None
) -> ChaosReport:
    """Execute one soak: fleet up, faults in, every answer checked.

    Builds a synthetic model, publishes it into a throwaway registry,
    starts a :class:`~repro.serving.fleet.FleetSupervisor` fleet (whose
    workers inherit the scenario's ``REPRO_FAULT_PLAN`` delay plan)
    behind a :class:`~repro.serving.proxy.FleetProxy`, then issues
    ``scenario.requests`` sequential ``/assign`` requests while
    delivering the seeded SIGSTOP/SIGCONT/SIGKILL timeline to worker
    pids. Every successful response is compared bit-for-bit against the
    in-process assignment of the same rows.

    Args:
        scenario: the seeded soak description.
        state_root: directory for the throwaway registry/fleet state
            (default: a ``TemporaryDirectory`` cleaned up afterwards).
    """
    from ..api.assign import Assigner
    from ..api.config import RunConfig
    from ..api.model import ClusterModel
    from ..serving.client import ServingClient, ServingClientError
    from ..serving.fleet import FleetSupervisor
    from ..serving.proxy import FleetProxy
    from ..serving.registry import ModelRegistry

    rng = np.random.default_rng(scenario.seed)
    centers = rng.normal(size=(scenario.k, scenario.dim)) * 2.0
    model = ClusterModel(centers, RunConfig(method="kmeans", k=scenario.k))
    # One pool of query rows, sliced per request at a rolling offset:
    # varied payloads, one precomputed ground truth.
    pool = rng.normal(size=(scenario.rows * 8, scenario.dim))
    expected = Assigner(centers).assign(pool)

    schedule = scenario.schedule()
    report = ChaosReport(scenario=scenario, schedule=schedule)
    pending = list(schedule)
    latencies_ms: list[float] = []

    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        root = Path(state_root) if state_root is not None else Path(tmp)
        registry = ModelRegistry(root / "registry")
        report.version = registry.publish(model, label="chaos")

        # Workers pick the delay plan up from the environment at spawn;
        # restore immediately after start so monitor *restarts* come
        # back clean (a healed worker should serve at full speed).
        saved_plan = os.environ.get(PLAN_ENV)
        os.environ[PLAN_ENV] = scenario.worker_plan().to_json()
        try:
            supervisor = FleetSupervisor(
                registry,
                workers=scenario.workers,
                state_dir=root / "fleet",
                heartbeat_s=scenario.heartbeat_s,
                health_timeout_s=scenario.health_timeout_s,
            ).start()
        finally:
            if saved_plan is None:
                os.environ.pop(PLAN_ENV, None)
            else:
                os.environ[PLAN_ENV] = saved_plan

        try:
            with FleetProxy(
                supervisor,
                breaker=scenario.breaker,
                breaker_failures=scenario.breaker_failures,
                breaker_reset_s=scenario.breaker_reset_s,
            ) as proxy:
                with ServingClient(
                    url=proxy.url,
                    timeout=5.0,
                    backoff_seed=scenario.seed,
                ) as client:
                    start = time.perf_counter()
                    for index in range(scenario.requests):
                        while pending and pending[0][0] == index:
                            _, kind, worker = pending.pop(0)
                            pids = supervisor.worker_pids()
                            if worker < len(pids):
                                _deliver(pids[worker], kind)
                        offset = (index * scenario.rows) % (
                            pool.shape[0] - scenario.rows + 1
                        )
                        batch = pool[offset : offset + scenario.rows]
                        t0 = time.perf_counter()
                        try:
                            response = client.assign(
                                batch, npy=True,
                                deadline_ms=scenario.deadline_ms,
                            )
                        except ServingClientError as exc:
                            report.failed += 1
                            key = f"http_{exc.status}"
                            report.errors[key] = report.errors.get(key, 0) + 1
                        else:
                            if np.array_equal(
                                response.labels,
                                expected[offset : offset + scenario.rows],
                            ):
                                report.succeeded += 1
                            else:
                                # A successful status with wrong labels
                                # is the one unforgivable outcome.
                                report.wrong += 1
                        latencies_ms.append((time.perf_counter() - t0) * 1e3)
                    report.wall_s = time.perf_counter() - start
                status = supervisor.status()
                report.restarts = sum(
                    row["restarts"] for row in status["workers"]
                )
        finally:
            # A SIGSTOP'd child would survive .stop()'s terminate();
            # thaw everything before shutdown, then stop the fleet.
            for pid in supervisor.worker_pids():
                _deliver(pid, "sigcont")
            supervisor.stop()

    if latencies_ms:
        report.p50_ms = float(np.percentile(latencies_ms, 50))
        report.p99_ms = float(np.percentile(latencies_ms, 99))
    return report


@dataclass
class RemoteFitReport:
    """Outcome of one remote-fit soak (:func:`run_remote_fit_soak`)."""

    seed: int
    workers: int
    n: int
    k: int
    #: ``"identical"`` (failover carried the fit, result bit-equal to
    #: local), ``"backend_error"`` (typed abort) or ``"wrong"`` (the
    #: unforgivable one: completed with different numbers).
    outcome: str = ""
    error: str = ""
    kills: int = 0
    wall_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.outcome in ("identical", "backend_error")

    def to_record(self) -> Any:
        """This soak as one schema-valid :class:`BenchRecord`."""
        from ..perf.harness import BenchRecord

        return BenchRecord(
            workload="chaos_remote_fit",
            n=self.n,
            k=self.k,
            jobs=self.workers,
            wall_s=self.wall_s,
            rows_per_s=self.n / self.wall_s if self.wall_s > 0 else 0.0,
            extra={
                "seed": self.seed,
                "outcome": self.outcome,
                "kills": self.kills,
                "error": self.error,
            },
        )


def run_remote_fit_soak(
    *,
    seed: int = 0,
    workers: int = 2,
    rows: int = 2_500,
    k: int = 4,
    state_root: str | Path | None = None,
) -> RemoteFitReport:
    """One remote fit through a live fleet with a mid-fit worker SIGKILL.

    Publishes a placeholder model into a throwaway registry (fleet
    workers need *a* model to come up healthy; ``/score`` itself is
    stateless per request), starts a
    :class:`~repro.serving.fleet.FleetSupervisor` fleet, and runs a
    mini-batch FairKM fit through
    :class:`~repro.backend.RemoteBackend` against the worker URLs while
    a seed-timed SIGKILL takes one worker down. The same fit is run
    first through the local backend; the remote result must match it
    bit-for-bit (labels, centers, objective history) or abort with a
    typed :class:`~repro.backend.base.BackendError` — never complete
    with different numbers.
    """
    import threading

    from ..api.config import RunConfig
    from ..api.model import ClusterModel
    from ..backend import BackendError, RemoteBackend
    from ..core import MiniBatchFairKM
    from ..perf.harness import _engine_problem
    from ..serving.fleet import FleetSupervisor
    from ..serving.registry import ModelRegistry

    rng = random.Random(seed)
    points, cats, nums = _engine_problem(rows)
    n_real = points.shape[0]
    lam = (n_real / k) ** 2

    def fit(backend):
        return MiniBatchFairKM(
            k, batch_size=512, lambda_=lam, seed=seed, max_iter=10,
            backend=backend,
        ).fit(points, categorical=cats, numeric=nums)

    base = fit("local")
    report = RemoteFitReport(seed=seed, workers=workers, n=n_real, k=k)

    with tempfile.TemporaryDirectory(prefix="repro-chaos-remote-") as tmp:
        root = Path(state_root) if state_root is not None else Path(tmp)
        registry = ModelRegistry(root / "registry")
        registry.publish(
            ClusterModel(points[:k].copy(), RunConfig(method="kmeans", k=k)),
            label="chaos",
        )
        supervisor = FleetSupervisor(
            registry, workers=workers, state_dir=root / "fleet"
        ).start()
        try:
            targets = tuple(url for _, url in supervisor.target_urls())
            backend = RemoteBackend(
                workers, targets=targets, backoff_seed=seed
            )
            holder: dict[str, Any] = {}

            def run_fit() -> None:
                try:
                    holder["result"] = fit(backend)
                except BaseException as exc:  # noqa: BLE001 - re-raised below
                    holder["error"] = exc

            thread = threading.Thread(target=run_fit, name="repro-chaos-fit")
            start = time.perf_counter()
            thread.start()
            # Seed-timed kill aimed at the middle of the fit; if the fit
            # outruns it, the soak degrades to a clean bit-identity check
            # (still a valid outcome — the dichotomy below covers both).
            time.sleep(0.1 + rng.random() * 0.2)
            pids = supervisor.worker_pids()
            victim = rng.randrange(len(pids))
            if _deliver(pids[victim], "sigkill"):
                report.kills = 1
            thread.join()
            report.wall_s = time.perf_counter() - start
        finally:
            supervisor.stop()

    error = holder.get("error")
    if isinstance(error, BackendError):
        report.outcome = "backend_error"
        report.error = str(error)
    elif error is not None:
        raise error
    else:
        result = holder["result"]
        identical = (
            np.array_equal(result.labels, base.labels)
            and np.array_equal(result.centers, base.centers)
            and np.array_equal(
                np.asarray(result.objective_history),
                np.asarray(base.objective_history),
            )
        )
        report.outcome = "identical" if identical else "wrong"
    return report


def run_chaos_suite(
    *,
    seed: int = 0,
    smoke: bool = False,
    requests: int | None = None,
    workers: int = 2,
    out_dir: str | Path | None = None,
    min_availability: float | None = None,
    remote_fit: bool = True,
) -> dict[str, Any]:
    """Run the chaos soak(s) and write ``BENCH_chaos.json``.

    The full suite runs the breaker-on soak and the *identical*
    breaker-off soak (same seed, same fault timeline) so the JSON holds
    the breaker's measured availability contribution side by side;
    ``--smoke`` runs a single short breaker-on soak for CI. Both modes
    finish with the remote-fit soak (:func:`run_remote_fit_soak`)
    unless *remote_fit* is False — its record rides in the same file
    and a ``"wrong"`` outcome fails the suite exactly like a wrong
    serving answer.

    Args:
        seed: scenario seed (same seed, same fault schedule).
        smoke: short single-soak mode for CI.
        requests: override the per-soak request count.
        workers: fleet size.
        out_dir: where ``BENCH_chaos.json`` goes (default: the results
            directory, honoring ``REPRO_RESULTS_DIR``).
        min_availability: the gate the breaker-on soak must clear
            (default 0.99 full / 0.90 smoke).
        remote_fit: also run the remote-fit kill soak (default True).

    Returns:
        ``{"path": Path, "reports": [ChaosReport, ...], "ok": bool,
        "reasons": [str, ...]}`` — ``ok`` is False when the breaker-on
        soak missed the availability bar or *any* soak returned a wrong
        answer. The remote-fit report, when run, is appended to
        ``reports``.
    """
    from ..experiments.paper import RESULTS_DIR
    from ..perf.harness import write_bench

    count = requests if requests is not None else (80 if smoke else 250)
    bar = min_availability if min_availability is not None else (
        0.90 if smoke else 0.99
    )
    scenarios = [
        ChaosScenario(seed=seed, requests=count, workers=workers, breaker=True)
    ]
    if not smoke:
        scenarios.append(
            ChaosScenario(
                seed=seed, requests=count, workers=workers, breaker=False
            )
        )
    reports: list[Any] = [run_chaos(scenario) for scenario in scenarios]
    records = [report.to_record() for report in reports]
    fit_report: RemoteFitReport | None = None
    if remote_fit:
        fit_report = run_remote_fit_soak(
            seed=seed, workers=workers, rows=1_200 if smoke else 2_500
        )
        reports.append(fit_report)
        records.append(fit_report.to_record())
    out = Path(out_dir) if out_dir is not None else RESULTS_DIR
    path = write_bench(out / "BENCH_chaos.json", CHAOS_SUITE, records)
    reasons: list[str] = []
    gated = reports[0]
    if gated.availability < bar:
        reasons.append(
            f"breaker-on availability {gated.availability:.4f} "
            f"is below the {bar:.2f} gate"
        )
    for report in reports:
        if isinstance(report, ChaosReport) and report.wrong:
            mode = "on" if report.scenario.breaker else "off"
            reasons.append(
                f"breaker-{mode} soak returned {report.wrong} wrong "
                "answer(s) — a successful response diverged from "
                "in-process predict"
            )
    if fit_report is not None and not fit_report.ok:
        reasons.append(
            f"remote-fit soak outcome {fit_report.outcome!r} — the fit "
            "completed with numbers that diverge from the local backend"
        )
    return {
        "path": path,
        "reports": reports,
        "ok": not reasons,
        "reasons": reasons,
    }


def render_chaos(path: str | Path) -> str:
    """One-line-per-soak summary of a written ``BENCH_chaos.json``."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    lines = []
    for record in payload["records"]:
        extra = record.get("extra", {})
        if record["workload"] == "chaos_remote_fit":
            lines.append(
                f"{record['workload']}: seed={extra.get('seed')} "
                f"workers={record['jobs']} n={record['n']} "
                f"outcome={extra.get('outcome')} "
                f"kills={extra.get('kills')} "
                f"wall={record['wall_s']:.1f}s"
            )
            continue
        lines.append(
            f"{record['workload']}: seed={extra.get('seed')} "
            f"requests={record['n']} "
            f"availability={extra.get('availability', 0.0):.4f} "
            f"p50={extra.get('p50_ms', 0.0):.1f}ms "
            f"p99={extra.get('p99_ms', 0.0):.1f}ms "
            f"failed={extra.get('failed')} wrong={extra.get('wrong')} "
            f"restarts={extra.get('restarts')}"
        )
    return "\n".join(lines)
