"""Deterministic fault injection for the serving stack.

``repro.faults`` is how this repo *proves* its failure handling instead
of asserting it: a :class:`FaultPlan` schedules faults (delays,
connect-refusals, mid-stream disconnects, truncated/corrupted wire
frames, slow-loris reads, worker signals) at exact invocation counts of
named sites, a :class:`FaultInjector` fires them at runtime, and every
serving component (:class:`~repro.serving.server.AssignmentServer`,
:class:`~repro.serving.proxy.FleetProxy`,
:class:`~repro.serving.client.ServingClient`,
:class:`~repro.backend.multiprocess.MultiprocessBackend`) accepts one
through an injectable hook — or, for subprocess workers, via the
``REPRO_FAULT_PLAN`` environment variable.

The :mod:`repro.faults.chaos` module turns plans into seeded soak
scenarios against a live fleet (``repro chaos``), measuring
availability and tail latency under fault while asserting that every
successful response stays bit-identical to in-process ``predict``.
"""

from .chaos import ChaosReport, ChaosScenario, run_chaos, run_chaos_suite
from .plan import FAULT_KINDS, PLAN_ENV, FaultEvent, FaultInjector, FaultPlan

__all__ = [
    "FAULT_KINDS",
    "PLAN_ENV",
    "ChaosReport",
    "ChaosScenario",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "run_chaos",
    "run_chaos_suite",
]
