"""Shared-memory multiprocess backend: one data placement, many scorers.

The fit's static data — the point matrix, every categorical code
vector, every (already standardized) numeric value vector — is written
into ``multiprocessing.shared_memory`` segments **once** per fit by
:meth:`MultiprocessBackend.start`. Each worker process attaches the
segments in its initializer, rebuilds genuine attribute specs on top of
the zero-copy views, and constructs one real
:class:`~repro.core.state.ClusterState` over them. Per scoring round
only the small additive statistics travel (``export_scoring_stats`` —
O(k·(d+v)) floats), plus the shard's indices and labels; the deltas
come back through the executor **in submission order**, so the merge is
deterministic no matter which worker ran which shard.

Bit-identity argument: the worker's state holds the same float64 bytes
for ``points``/codes/values as the parent (shared memory), recomputes
the same derived constants (``dataset_distribution``, ``dataset_mean``,
``point_sqnorm`` — same arrays, same expressions), installs the
parent's exact statistics, and then calls the *same*
``batch_move_deltas`` on the *same* shard partition. Same inputs, same
code, same machine → same bits. ``tests/backend/test_multiprocess.py``
property-tests this across methods and worker counts.

Numeric specs are rebuilt with ``standardize=False`` from the parent's
*post*-standardization values: re-standardizing an already-unit-variance
column would divide by a std of ``1.0 ± ulp`` and shift bits.
"""

from __future__ import annotations

import os
import secrets
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from multiprocessing import get_context, shared_memory
from typing import Any, Sequence

import numpy as np

from .base import Backend, BackendError

#: Shared-memory segment name prefix (lifecycle tests scan for leaks).
SEGMENT_PREFIX = "repro_bk"

#: Environment override for the multiprocessing start method
#: (``fork`` where available is much cheaper than ``spawn``).
START_METHOD_ENV = "REPRO_MP_START_METHOD"

# Worker-process globals, set once by _init_worker.
_WORKER_STATE: Any = None
_WORKER_SEGMENTS: list[shared_memory.SharedMemory] = []
_WORKER_INJECTOR: Any = False  # False = not yet resolved; None = no plan


def _pick_context():
    import multiprocessing

    method = os.environ.get(START_METHOD_ENV)
    if not method:
        method = "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
    return get_context(method)


def _attach_array(name: str, shape: tuple[int, ...], dtype: str) -> np.ndarray:
    """Worker-side: map a named segment as an ndarray view.

    The parent owns each segment's lifetime, but
    ``SharedMemory(name=...)`` also *registers* it with the resource
    tracker (no ``track=False`` before Python 3.13), which would make
    the tracker unlink — or at least complain about — segments the
    worker merely attached. Registration is suppressed for the
    duration of the attach; worker init is single-threaded.
    """
    from multiprocessing import resource_tracker

    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        shm = shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original
    _WORKER_SEGMENTS.append(shm)
    return np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf)


def _init_worker(spec: dict[str, Any]) -> None:
    """Build the worker's ClusterState over the shared segments."""
    global _WORKER_STATE
    from ..core.attributes import CategoricalSpec, NumericSpec
    from ..core.state import ClusterState

    n = spec["n"]
    points = _attach_array(spec["points"]["shm"], (n, spec["dim"]), spec["points"]["dtype"])
    cats = [
        CategoricalSpec(
            c["name"],
            _attach_array(c["shm"], (n,), c["dtype"]),
            n_values=c["n_values"],
            weight=c["weight"],
        )
        for c in spec["cats"]
    ]
    nums = [
        NumericSpec(
            m["name"],
            _attach_array(m["shm"], (n,), m["dtype"]),
            weight=m["weight"],
            # Parent ships post-standardization values; see module doc.
            standardize=False,
        )
        for m in spec["nums"]
    ]
    _WORKER_STATE = ClusterState(points, np.zeros(n, dtype=np.int64), spec["k"], cats, nums)


def _worker_injector() -> Any:
    """Lazily resolve the env-gated fault injector for this worker.

    Resolved once per process from ``REPRO_FAULT_PLAN`` (the injector's
    per-site counters must persist across shards to hit ``at`` indices),
    and only inside worker processes — the parent's hot path never pays
    for it.
    """
    global _WORKER_INJECTOR
    if _WORKER_INJECTOR is False:
        from ..faults.plan import FaultInjector

        _WORKER_INJECTOR = FaultInjector.from_env()
    return _WORKER_INJECTOR


def _score_shard(task: tuple[np.ndarray, np.ndarray, dict[str, Any], float]) -> np.ndarray:
    """Worker-side: install the round's stats, scatter labels, score."""
    injector = _worker_injector()
    if injector is not None:
        event = injector.fire("backend.score")
        if event is not None and event.kind == "sigkill":
            import signal

            os.kill(os.getpid(), signal.SIGKILL)  # pool breaks; map_score raises
    indices, labels, stats, lam = task
    state = _WORKER_STATE
    if state is None:  # pragma: no cover - initializer always ran
        raise BackendError("multiprocess worker was not initialized")
    state.install_scoring_stats(stats)
    state.labels[np.asarray(indices)] = labels
    return state.batch_move_deltas(np.asarray(indices), lam)


class MultiprocessBackend(Backend):
    """Score shards in worker processes over one shared data placement.

    Construction is cheap and allocates nothing; :meth:`start` places
    the data and creates the (lazy) process pool, :meth:`shutdown`
    (idempotent, run by the engine's ``finally``) tears both down and
    unlinks every segment — including after a worker was SIGKILLed
    mid-fit, in which case :meth:`map_score` surfaces a
    :class:`BackendError` instead of hanging.
    """

    name = "multiprocess"

    def __init__(self, workers: int | str | None = None) -> None:
        super().__init__(workers)
        self._segments: list[shared_memory.SharedMemory] = []
        self._executor: ProcessPoolExecutor | None = None

    # -- data placement ------------------------------------------------ #

    def _place(self, array: np.ndarray) -> dict[str, str]:
        """Copy *array* into a fresh named segment; return its spec."""
        array = np.ascontiguousarray(array)
        shm = shared_memory.SharedMemory(
            create=True,
            size=max(1, array.nbytes),
            name=f"{SEGMENT_PREFIX}_{os.getpid()}_{secrets.token_hex(4)}",
        )
        self._segments.append(shm)
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=shm.buf)
        view[...] = array
        return {"shm": shm.name, "dtype": array.dtype.str}

    def start(self, state: Any) -> None:
        self.shutdown()  # reusable across fits: re-place fresh data
        spec: dict[str, Any] = {
            "n": int(state.n),
            "dim": int(state.dim),
            "k": int(state.k),
            "points": self._place(state.points),
            "cats": [
                {
                    "name": s.name,
                    "n_values": int(s.n_values),
                    "weight": float(s.weight),
                    **self._place(s.codes),
                }
                for s in state.categorical_specs
            ],
            "nums": [
                {"name": s.name, "weight": float(s.weight), **self._place(s.values)}
                for s in state.numeric_specs
            ],
        }
        self._executor = ProcessPoolExecutor(
            max_workers=self.workers,
            mp_context=_pick_context(),
            initializer=_init_worker,
            initargs=(spec,),
        )

    def shutdown(self) -> None:
        if self._executor is not None:
            try:
                self._executor.shutdown(wait=True, cancel_futures=True)
            except Exception:  # pragma: no cover - broken pools still release
                pass
            self._executor = None
        for shm in self._segments:
            try:
                shm.close()
            except Exception:  # pragma: no cover
                pass
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        self._segments = []

    # -- scoring ------------------------------------------------------- #

    def map_score(
        self, state: Any, shards: Sequence[np.ndarray], lambda_: float
    ) -> list[np.ndarray]:
        if self._executor is None:
            raise BackendError("MultiprocessBackend.map_score before start()")
        stats = state.export_scoring_stats()
        lam = float(lambda_)
        tasks = [(shard, state.labels[shard], stats, lam) for shard in shards]
        try:
            # executor.map yields results in submission order: the merge
            # is deterministic regardless of worker scheduling.
            return list(self._executor.map(_score_shard, tasks))
        except BrokenProcessPool as exc:
            raise BackendError(
                "a multiprocess scoring worker died mid-fit (pool is broken); "
                "the fit cannot continue bit-identically and was aborted"
            ) from exc

    # -- introspection (lifecycle tests) ------------------------------- #

    def segment_names(self) -> list[str]:
        """Names of the currently placed shared-memory segments."""
        return [shm.name for shm in self._segments]

    def worker_pids(self) -> list[int]:
        """PIDs of spawned worker processes (empty before first dispatch)."""
        if self._executor is None or not getattr(self._executor, "_processes", None):
            return []
        return list(self._executor._processes)
