"""The pluggable training-backend protocol and the in-process default.

A *backend* answers one question for the optimizer: given a frozen
:class:`~repro.core.state.ClusterState` and a batch of row indices, who
computes the per-shard move-delta statistics and how do the pieces come
back together? The FairKM objective decomposes into additive per-cluster
sufficient statistics, so a shard's deltas depend only on (static data,
frozen stats, shard rows) — which is exactly what lets the same sweep
code run on a thread pool, a process pool over shared memory, or (one
day) a fleet of remote hosts.

The protocol keeps the repo's standing correctness bar structural:

* :meth:`Backend.shard` partitions rows by a *size*, never by the
  worker count, so the task list is identical at every parallelism.
* :meth:`Backend.map_score` returns shard results **in shard order**
  regardless of which worker computed what.
* :meth:`Backend.merge_stats` concatenates in that fixed order.

Hold those three and a backend's fit is bit-identical to the serial
one — property-tested in ``tests/backend/``.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from ..core.parallel import FrozenScoringView, WorkerPool, resolve_workers


class BackendError(RuntimeError):
    """A backend lost a worker or its data placement mid-fit."""


class Backend:
    """Base class / protocol for training execution backends.

    Lifecycle: :meth:`start` is called once per fit with the freshly
    built state (its job is *data placement* — e.g. copying the matrix
    into shared memory); :meth:`map_score` runs once per scoring round;
    :meth:`shutdown` always runs in a ``finally`` and must be
    idempotent. A backend instance is reusable across fits: ``start``
    re-places the new fit's data.
    """

    #: Registry name; subclasses override.
    name = "abstract"

    def __init__(self, workers: int | str | None = None) -> None:
        self.workers = resolve_workers(workers)

    # -- lifecycle ----------------------------------------------------- #

    def start(self, state: Any) -> None:
        """Place *state*'s static data (points + specs) for the workers."""

    def shutdown(self) -> None:
        """Release workers and placed data (idempotent)."""

    # -- scoring ------------------------------------------------------- #

    def shard(self, indices: np.ndarray, rows_per_shard: int) -> list[np.ndarray]:
        """Fixed partition of *indices* into contiguous shards.

        Depends only on ``rows_per_shard`` — never on ``self.workers``
        — so every backend at every worker count scores the exact same
        task list in the exact same order.
        """
        indices = np.asarray(indices)
        size = int(rows_per_shard)
        if size < 1:
            raise ValueError(f"rows_per_shard must be >= 1, got {rows_per_shard}")
        return [indices[off : off + size] for off in range(0, indices.shape[0], size)]

    def map_score(
        self, state: Any, shards: Sequence[np.ndarray], lambda_: float
    ) -> list[np.ndarray]:
        """Score every shard against *state*'s frozen statistics.

        Returns one ``(rows, k)`` delta matrix per shard, in shard
        order. Subclasses implement.
        """
        raise NotImplementedError

    def merge_stats(self, parts: Sequence[np.ndarray]) -> np.ndarray:
        """Merge per-shard results in the fixed shard order."""
        return np.vstack(parts)

    # -- introspection ------------------------------------------------- #

    def describe(self) -> dict[str, Any]:
        """Diagnostics payload: who ran the fit, at what width."""
        return {"name": self.name, "workers": self.workers}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(workers={self.workers})"


class LocalBackend(Backend):
    """Today's thread pool behind the backend protocol (the default).

    Wraps :class:`~repro.core.parallel.WorkerPool` and scores through a
    :class:`~repro.core.parallel.FrozenScoringView`, i.e. byte for byte
    the dispatch the sweeps did before backends existed. ``start`` and
    ``shutdown`` are no-ops — the pool is lazy, serial owners never
    spawn a thread, and it is reused across fits like the sweeps'
    pools always were.
    """

    name = "local"

    def __init__(self, workers: int | str | None = None) -> None:
        super().__init__(workers)
        self._pool = WorkerPool(self.workers)

    def map_score(
        self, state: Any, shards: Sequence[np.ndarray], lambda_: float
    ) -> list[np.ndarray]:
        view = FrozenScoringView(state)
        lam = float(lambda_)
        return self._pool.map(lambda sl: view.batch_move_deltas(sl, lam), shards)
