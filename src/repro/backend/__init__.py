"""Pluggable training execution backends.

Where a fit's shard scoring runs: the in-process thread pool
(:class:`LocalBackend`, the default — zero behavior change), a process
pool over one shared-memory data placement
(:class:`MultiprocessBackend` — bit-identical to local at every worker
count), or the serving fleet over HTTP (:class:`RemoteBackend` —
``POST /score`` per shard, loopback without targets, bit-identical
too). See ``docs/architecture.md`` ("Training backends" / "Remote
training") and :func:`make_backend` for the string spec the API layer
exposes as ``RunConfig(backend=..., workers=..., targets=...)``.
"""

from __future__ import annotations

from .base import Backend, BackendError, LocalBackend
from .multiprocess import MultiprocessBackend
from .remote import RemoteBackend

#: Valid ``backend=`` spec strings, in registry order.
BACKEND_NAMES = ("local", "multiprocess", "remote")

_REGISTRY = {
    LocalBackend.name: LocalBackend,
    MultiprocessBackend.name: MultiprocessBackend,
    RemoteBackend.name: RemoteBackend,
}


def make_backend(
    spec: str | Backend | None, workers: int | str | None = None
) -> Backend:
    """Resolve a backend spec string (or pass an instance through).

    ``None`` means the default (``"local"``). *workers* follows the
    shared worker-count domain (int >= 1, -1, or ``"auto"``) and is
    rejected when *spec* is already a constructed instance.
    """
    if isinstance(spec, Backend):
        if workers is not None:
            raise ValueError("workers cannot be overridden on a constructed Backend instance")
        return spec
    name = "local" if spec is None else str(spec)
    cls = _REGISTRY.get(name)
    if cls is None:
        raise ValueError(f"backend must be one of {BACKEND_NAMES}, got {spec!r}")
    return cls(workers)


__all__ = [
    "BACKEND_NAMES",
    "Backend",
    "BackendError",
    "LocalBackend",
    "MultiprocessBackend",
    "RemoteBackend",
    "make_backend",
]
