"""Remote backend stub: the multi-host protocol, minus the hosts.

``RemoteBackend`` sketches how a fit would fan shards out to the
serving fleet's worker plumbing. Each scoring round it encodes exactly
what a remote scorer would need — the shard's row indices and labels
plus the round's additive statistics — as a ``repro.serving.wire``
stream (the same length-prefixed npy frame format the fleet already
speaks), decodes it back as the peer would, and scores from the
*decoded* arrays. The wire round trip is therefore load-bearing, not
decorative: a fit through this backend proves the protocol carries
everything needed for a bit-identical remote fit, and meters the bytes
a real deployment would move.

Actual multi-host dispatch (HTTP POST per shard to ``targets`` — e.g.
the worker URLs in a fleet's ``fleet.json``) is deliberately left as
:meth:`dispatch` raising ``NotImplementedError``; the fleet's registry
and transport are reused, only the server-side scoring endpoint is
missing.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from .base import Backend, BackendError


class RemoteBackend(Backend):
    """Wire-format round-trip scorer standing in for remote workers."""

    name = "remote-stub"

    def __init__(
        self,
        workers: int | str | None = None,
        targets: Sequence[str] = (),
        codec: str = "identity",
    ) -> None:
        super().__init__(workers)
        self.targets = tuple(targets)
        self.codec = codec
        #: Bytes a real deployment would have moved (requests only).
        self.bytes_encoded = 0
        self.frames_encoded = 0
        self._started = False

    @classmethod
    def from_fleet_state(cls, fleet_state: dict[str, Any], **kwargs: Any) -> "RemoteBackend":
        """Build from a fleet's ``fleet.json`` payload (worker URLs)."""
        targets = [w["url"] for w in fleet_state.get("workers", []) if w.get("url")]
        return cls(targets=targets, **kwargs)

    def start(self, state: Any) -> None:
        self._started = True

    def shutdown(self) -> None:
        self._started = False

    def plan(self, shards: Sequence[np.ndarray]) -> list[dict[str, Any]]:
        """Round-robin shard→target placement a real dispatch would use."""
        return [
            {
                "shard": i,
                "rows": int(shard.shape[0]),
                "target": self.targets[i % len(self.targets)] if self.targets else None,
            }
            for i, shard in enumerate(shards)
        ]

    def dispatch(self, target: str, payload: bytes) -> bytes:
        """POST *payload* to a remote scoring endpoint. Not implemented:

        the fleet workers do not expose a ``/score`` route yet; when
        they do, this is the only method a real ``RemoteBackend`` needs
        to override (everything else — encoding, ordering, merging —
        is already exercised by the stub's local round trip).
        """
        raise NotImplementedError(
            f"remote dispatch to {target!r} is sketched only; "
            "fleet workers expose no scoring endpoint yet"
        )

    def map_score(
        self, state: Any, shards: Sequence[np.ndarray], lambda_: float
    ) -> list[np.ndarray]:
        if not self._started:
            raise BackendError("RemoteBackend.map_score before start()")
        from ..serving.wire import decode_stream, encode_stream

        stats = state.export_scoring_stats()
        stat_arrays = [
            np.asarray(stats["sums"]),
            np.asarray(stats["sum_sqnorm"]),
            np.asarray(stats["sizes_f"]),
            *[np.asarray(a) for a in stats["cat_counts"]],
            *[np.asarray(a) for a in stats["cat_h"]],
            *[np.asarray(a) for a in stats["num_d"]],
        ]
        lam = float(lambda_)
        parts: list[np.ndarray] = []
        for shard in shards:
            request = [
                np.asarray(shard, dtype=np.int64),
                np.asarray(state.labels[shard], dtype=np.int64),
                np.asarray([lam], dtype=np.float64),
                *stat_arrays,
            ]
            payload = encode_stream(request, codec=self.codec)
            self.bytes_encoded += len(payload)
            self.frames_encoded += len(request)
            decoded, _ = decode_stream(payload)
            if len(decoded) != len(request):  # pragma: no cover - wire bug guard
                raise BackendError("remote-stub wire round trip dropped frames")
            # Score from the decoded arrays, as the remote peer would.
            indices = np.asarray(decoded[0])
            parts.append(state.batch_move_deltas(indices, float(decoded[2][0])))
        return parts
