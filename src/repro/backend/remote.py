"""Remote training backend: shard scoring over the serving fleet.

``RemoteBackend`` fans each scoring round's shards out to fleet workers
over HTTP: every shard becomes one ``POST /score`` request (the
:mod:`repro.serving.score` wire contract), the worker answers with the
shard's ``(b, k)`` delta matrix, and the driver merges responses in
shard order. Because shard partition and merge order are structural
(:class:`~repro.backend.base.Backend`) and both ends score through the
same :func:`repro.core.state.shard_move_deltas` expression sequence, a
remote fit is bit-for-bit identical to :class:`LocalBackend` — the
property tests in ``tests/backend/test_remote.py`` hold every method to
that bar.

Two payload modes:

* **inline** (default): each request carries the shard's data rows and
  the round's frozen statistics — workers need no local data.
* **artifact** (``artifact_root=``): :meth:`start` publishes the fit's
  static data once as a content-addressed artifact under the registry
  the workers share; per round only indices, labels, and statistics
  travel. This is what lets fits outgrow what the driver can ship per
  round.

Resilience: per-request deadline propagation (``X-Deadline-Ms``),
seeded jittered backoff between failover attempts, and dead-target
failover — a target that fails at the transport level
(:class:`~repro.serving.client.ServingUnavailableError`, i.e. after the
client's own reconnect retry) is marked dead for the rest of the fit
and its shards move to the next live target from the round-robin
:meth:`plan`. When every target is dead the fit aborts with a typed
:class:`~repro.backend.base.BackendError`: a request may fail, it may
never lie.

With no targets the backend runs in **loopback** mode: payloads still
round-trip the full wire codec, but :meth:`dispatch` hands them to an
in-process :class:`~repro.serving.score.ShardScorer` — exactly the
server's scoring path minus the socket. Loopback is how tier-1 tests
prove driver↔server parity without spawning a fleet, and what
``examples/distributed_fit.py`` meters.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Any, Sequence

import numpy as np

from .base import Backend, BackendError


def _validate_targets(targets: Sequence[str]) -> tuple[str, ...]:
    """Scheme, non-emptiness, and duplicate checks, at construction."""
    validated: list[str] = []
    for target in targets:
        if not isinstance(target, str) or not target.strip():
            raise ValueError(f"remote target must be a non-empty URL, got {target!r}")
        target = target.strip().rstrip("/")
        if not target.startswith(("http://", "http+unix://")):
            raise ValueError(
                f"remote target {target!r} must be an http:// or http+unix:// URL"
            )
        if target in validated:
            raise ValueError(f"duplicate remote target {target!r}")
        validated.append(target)
    return tuple(validated)


class RemoteBackend(Backend):
    """Fleet-dispatching scoring backend (loopback without targets).

    Args:
        workers: concurrent in-flight shard requests (also the shard
            count knob shared by every backend; the shard *partition*
            never depends on it).
        targets: fleet worker URLs (``http://host:port`` or
            ``http+unix:///path``) — validated here, not at dispatch
            time. Empty means loopback mode.
        codec: wire compression for request frames.
        artifact_root: a registry root shared with the workers; set,
            it switches payloads to artifact mode (worker-side shard
            loading). Loopback scores artifacts from the same root.
        timeout: per-request socket timeout, seconds.
        deadline_ms: per-request deadline budget, propagated as
            ``X-Deadline-Ms`` and re-stamped with the remaining budget
            on every retry.
        backoff_seed: seeds the failover backoff jitter so chaos runs
            replay exactly.
        fault_injector: fires the ``backend.remote.dispatch`` site
            before every dispatch (``refuse``/``disconnect`` simulate a
            dead target, ``delay`` sleeps). Default: built from the
            ``REPRO_FAULT_PLAN`` environment variable when set.
    """

    name = "remote"

    def __init__(
        self,
        workers: int | str | None = None,
        targets: Sequence[str] = (),
        codec: str = "identity",
        *,
        artifact_root: Any = None,
        timeout: float = 30.0,
        deadline_ms: float | None = None,
        backoff_base: float = 0.05,
        backoff_cap: float = 1.0,
        backoff_seed: int = 0,
        fault_injector: Any = None,
    ) -> None:
        super().__init__(workers)
        self.targets = _validate_targets(targets)
        self.codec = codec
        self.artifact_root = artifact_root
        self.timeout = float(timeout)
        self.deadline_ms = deadline_ms
        self.backoff_base = float(backoff_base)
        self.backoff_cap = float(backoff_cap)
        self.backoff_seed = int(backoff_seed)
        if fault_injector is None:
            from ..faults.plan import FaultInjector

            fault_injector = FaultInjector.from_env()
        self.fault_injector = fault_injector
        #: Bytes/frames shipped to scorers (requests only).
        self.bytes_encoded = 0
        self.frames_encoded = 0
        #: Targets written off mid-fit, cumulative across fits — unlike
        #: ``_dead`` this survives the engine's post-fit ``shutdown()``.
        self.failovers = 0
        self._started = False
        self._artifact: str | None = None
        self._clients: dict[str, Any] = {}
        #: One lock per target: a ServingClient owns a single HTTP
        #: connection, so two pool threads failing over onto the same
        #: target must take turns rather than interleave on the socket.
        self._client_locks: dict[str, threading.Lock] = {}
        self._dead: set[str] = set()
        self._loopback: Any = None

    @classmethod
    def from_fleet_state(cls, fleet_state: dict[str, Any], **kwargs: Any) -> "RemoteBackend":
        """Build from a fleet's ``fleet.json`` payload (worker URLs)."""
        targets = [w["url"] for w in fleet_state.get("workers", []) if w.get("url")]
        return cls(targets=targets, **kwargs)

    # -- lifecycle ----------------------------------------------------- #

    def start(self, state: Any) -> None:
        from ..serving.client import ServingClient
        from ..serving.score import ShardScorer, publish_data_artifact

        self.shutdown()  # reusable across fits: fresh placement each time
        if self.artifact_root is not None:
            self._artifact = publish_data_artifact(self.artifact_root, state)
        for target in self.targets:
            self._clients[target] = ServingClient(
                url=target, timeout=self.timeout, backoff_seed=self.backoff_seed
            )
            self._client_locks[target] = threading.Lock()
        if not self.targets:
            self._loopback = ShardScorer(artifact_root=self.artifact_root)
        self._rng = random.Random(self.backoff_seed)
        self._started = True

    def shutdown(self) -> None:
        for client in self._clients.values():
            client.close()
        self._clients = {}
        self._client_locks = {}
        self._dead = set()
        self._artifact = None
        self._loopback = None
        self._started = False

    # -- dispatch ------------------------------------------------------ #

    def plan(self, shards: Sequence[np.ndarray]) -> list[dict[str, Any]]:
        """Round-robin shard→target placement, exactly as dispatched.

        Each entry's ``target`` is the shard's *primary* target;
        :meth:`map_score` fails a shard over to the next live target in
        the same rotation when the primary is dead. With no targets
        every shard scores through the loopback scorer
        (``target: None``).
        """
        return [
            {
                "shard": i,
                "rows": int(shard.shape[0]),
                "target": self.targets[i % len(self.targets)] if self.targets else None,
            }
            for i, shard in enumerate(shards)
        ]

    def dispatch(self, target: str | None, payload: bytes) -> bytes:
        """POST one encoded shard to *target*; returns the response body.

        ``target=None`` is the loopback path: the payload still crosses
        the full wire codec, scored by an in-process
        :class:`~repro.serving.score.ShardScorer`.

        Raises:
            ServingUnavailableError: the target cannot be reached (the
                caller's failover signal).
            BackendError: the target answered but refused the request —
                a protocol-level failure no other target would accept.
        """
        from ..serving.client import ServingClientError, ServingUnavailableError
        from ..serving.server import STREAM_CONTENT_TYPE

        if self.fault_injector is not None:
            event = self.fault_injector.fire("backend.remote.dispatch")
            if event is not None and event.kind in ("refuse", "disconnect"):
                raise ServingUnavailableError(
                    f"injected {event.kind} dispatching to {target or 'loopback'}"
                )
        if target is None:
            return self._dispatch_loopback(payload)
        client = self._clients.get(target)
        if client is None:
            raise BackendError(f"dispatch to unknown target {target!r} (not started?)")
        try:
            with self._client_locks[target]:
                status, _, body = client.request_raw(
                    "POST",
                    "/score",
                    payload,
                    STREAM_CONTENT_TYPE,
                    deadline_ms=self.deadline_ms,
                )
        except ServingUnavailableError:
            raise
        except ServingClientError as exc:
            raise BackendError(f"/score on {target} failed: {exc}") from exc
        if status != 200:
            raise BackendError(f"/score on {target} answered HTTP {status}")
        return body

    def _dispatch_loopback(self, payload: bytes) -> bytes:
        from ..serving.score import encode_score_response
        from ..serving.wire import decode_stream

        frames, _ = decode_stream(payload)
        deltas, _ = self._loopback.score(frames)
        return b"".join(encode_score_response(deltas, self.codec))

    # -- scoring ------------------------------------------------------- #

    def map_score(
        self, state: Any, shards: Sequence[np.ndarray], lambda_: float
    ) -> list[np.ndarray]:
        if not self._started:
            raise BackendError("RemoteBackend.map_score before start()")
        from concurrent.futures import ThreadPoolExecutor

        from ..serving.score import encode_score_request, request_frame_count

        lam = float(lambda_)
        k = int(state.k)
        mode = "inline" if self._artifact is None else "artifact"
        frames_per_request = request_frame_count(
            mode, len(state.categorical_specs), len(state.numeric_specs)
        )
        payloads: list[bytes] = []
        for shard in shards:
            payload = encode_score_request(
                state, shard, lam, codec=self.codec, artifact=self._artifact
            )
            self.bytes_encoded += len(payload)
            self.frames_encoded += frames_per_request
            payloads.append(payload)
        plan = self.plan(shards)

        def score_one(i: int) -> np.ndarray:
            return self._score_with_failover(
                plan[i]["target"], payloads[i], rows=int(shards[i].shape[0]), k=k
            )

        if not self.targets:
            return [score_one(i) for i in range(len(shards))]
        width = max(1, min(self.workers, len(self.targets)))
        with ThreadPoolExecutor(
            max_workers=width, thread_name_prefix="repro-remote"
        ) as pool:
            # Executor.map preserves submission order: shard order in,
            # shard order out, whatever target scored what.
            return list(pool.map(score_one, range(len(shards))))

    def _score_with_failover(
        self, primary: str | None, payload: bytes, *, rows: int, k: int
    ) -> np.ndarray:
        from ..serving.client import ServingUnavailableError
        from ..serving.resilience import backoff_delays
        from ..serving.score import decode_score_response

        if primary is None:
            try:
                raw = self.dispatch(None, payload)
            except ServingUnavailableError as exc:
                # Loopback has nowhere to fail over to; keep the caller's
                # contract typed (a fit aborts, it never silently lies).
                raise BackendError(f"loopback scoring unavailable: {exc}") from exc
            return np.array(decode_score_response(raw, rows=rows, k=k))
        # Rotate the target list so each shard starts at its planned
        # primary and fails over along the same round-robin order.
        start = self.targets.index(primary)
        rotation = [
            self.targets[(start + off) % len(self.targets)]
            for off in range(len(self.targets))
        ]
        delays = backoff_delays(
            base=self.backoff_base, cap=self.backoff_cap, rng=self._rng
        )
        last_error: Exception | None = None
        for target in rotation:
            if target in self._dead:
                continue
            try:
                raw = self.dispatch(target, payload)
            except ServingUnavailableError as exc:
                # Transport-dead after the client's own reconnect retry:
                # write the target off for this fit and move on.
                if target not in self._dead:
                    self._dead.add(target)
                    self.failovers += 1
                last_error = exc
                time.sleep(next(delays))
                continue
            return np.array(decode_score_response(raw, rows=rows, k=k))
        raise BackendError(
            f"all {len(self.targets)} remote targets are dead "
            f"(last error: {last_error}); the fit cannot continue "
            "bit-identically and was aborted"
        )

    # -- introspection ------------------------------------------------- #

    def describe(self) -> dict[str, Any]:
        info = super().describe()
        info["targets"] = len(self.targets)
        info["payload"] = "inline" if self.artifact_root is None else "artifact"
        info["failovers"] = self.failovers
        if self._artifact is not None:
            info["artifact"] = self._artifact
        return info

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"RemoteBackend(workers={self.workers}, "
            f"targets={len(self.targets)}, codec={self.codec!r})"
        )
