"""Benchmark harness: run perf suites, emit machine-readable JSON.

Every benchmark in this repo reduces to the same record shape — *one
workload, at one size, with one worker count, took this long* — so the
harness standardizes it:

.. code-block:: json

    {
      "schema": "repro.bench/v1",
      "suite": "engine",
      "records": [
        {"workload": "fairkm_chunked_scoring", "n": 10000, "k": 5,
         "jobs": 4, "wall_s": 0.61, "rows_per_s": 1.1e6,
         "speedup": 2.3, "extra": {"n_iter": 7}}
      ]
    }

``speedup`` is measured against the suite's baseline record for the
same ``(workload, n, k)`` — the ``jobs=1`` run emitted in the same file
— so a single ``BENCH_*.json`` is self-contained evidence of scaling.
:func:`validate_bench` checks the schema without external dependencies;
CI runs it on every PR's smoke output and uploads the JSON as an
artifact, extending the recorded perf trajectory.

Three suites ship today:

* **engine** — FairKM training hot path. Fits the chunked-exact engine
  (and a large-batch mini-batch fit) across worker counts; alongside
  end-to-end fit wall-clock it emits a ``*_scoring`` workload whose
  wall is the summed frozen-window scoring time from
  ``FairKMResult.diagnostics`` — exactly the section ``n_jobs``
  parallelizes (the dense first sweeps fall back to the serial loop by
  design, so Amdahl caps the end-to-end number).
* **assign** — the serving hot loop: ``Assigner.assign`` rows/s across
  worker counts.
* **serve** — the end-to-end serving ceiling: rows/s through a live
  :class:`~repro.serving.server.AssignmentServer` (npy and JSON
  payloads over HTTP) next to the in-process ``Assigner`` baseline on
  the same points, so ``BENCH_serve.json`` quantifies exactly what the
  HTTP hop costs.
* **fleet** — multi-process scaling: one streamed request dealt by a
  :class:`~repro.serving.proxy.FleetProxy` across 1, 2, ... worker
  processes (the ``jobs`` column is the fleet size), next to the same
  streamed request into a single :class:`AssignmentServer` and the
  in-process ``Assigner`` on the same points — so ``BENCH_fleet.json``
  quantifies what adding worker processes buys over one process, at
  bit-identical labels. Fleet records carry the host ``cpu_count`` so
  the scaling gate knows what the hardware allows. A payload-size
  sweep (``fleet_stream_scatter``) additionally streams single growing
  requests through the proxy and records ``bytes_per_s`` in ``extra``
  — the wire format's own ceiling.
* **backend** — distributed-training scaling: one large-batch
  mini-batch FairKM fit per worker count through the
  :class:`~repro.backend.MultiprocessBackend` (data placed in shared
  memory once, shard stats scored in worker processes), next to the
  same fit through the default thread-pool
  :class:`~repro.backend.LocalBackend` — so ``BENCH_backend.json``
  quantifies what worker *processes* buy over in-process scoring, at
  bit-identical labels. Records carry the host ``cpu_count`` so the
  scaling gate (:func:`repro.perf.compare.backend_gate`) knows what
  the hardware allows.

Entry points: ``repro bench`` (CLI) and ``benchmarks/harness.py``
(standalone script).
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Callable, Sequence

import numpy as np

#: Schema tag written into (and required from) every bench file.
BENCH_SCHEMA = "repro.bench/v1"

#: Known suite names (one output file per suite).
SUITES = ("engine", "assign", "serve", "fleet", "backend")

#: Required record fields and their types (``extra`` is optional).
_RECORD_FIELDS: dict[str, type] = {
    "workload": str,
    "n": int,
    "k": int,
    "jobs": int,
    "wall_s": float,
    "rows_per_s": float,
    "speedup": float,
}


@dataclass
class BenchRecord:
    """One measured (workload, size, worker-count) point."""

    workload: str
    n: int
    k: int
    jobs: int
    wall_s: float
    rows_per_s: float
    speedup: float = 1.0
    extra: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        data = asdict(self)
        if not data["extra"]:
            del data["extra"]
        return data


def bench_payload(suite: str, records: Sequence[BenchRecord]) -> dict[str, Any]:
    """Assemble the on-disk payload for one suite."""
    return {
        "schema": BENCH_SCHEMA,
        "suite": suite,
        "records": [r.to_dict() for r in records],
    }


def validate_bench(payload: Any) -> None:
    """Validate a bench payload against the v1 schema.

    Raises:
        ValueError: with the first violation found. Intended for CI:
            ``validate_bench(json.loads(path.read_text()))``.
    """
    if not isinstance(payload, dict):
        raise ValueError(f"bench payload must be an object, got {type(payload).__name__}")
    if payload.get("schema") != BENCH_SCHEMA:
        raise ValueError(
            f"bench schema must be {BENCH_SCHEMA!r}, got {payload.get('schema')!r}"
        )
    suite = payload.get("suite")
    if not isinstance(suite, str) or not suite:
        raise ValueError(f"bench suite must be a non-empty string, got {suite!r}")
    records = payload.get("records")
    if not isinstance(records, list) or not records:
        raise ValueError("bench records must be a non-empty list")
    for idx, record in enumerate(records):
        if not isinstance(record, dict):
            raise ValueError(f"records[{idx}] must be an object")
        for name, kind in _RECORD_FIELDS.items():
            if name not in record:
                raise ValueError(f"records[{idx}] is missing {name!r}")
            value = record[name]
            # bool is an int subclass; reject it for the numeric fields.
            if isinstance(value, bool) or not isinstance(
                value, (kind,) if kind is not float else (int, float)
            ):
                raise ValueError(
                    f"records[{idx}].{name} must be {kind.__name__}, "
                    f"got {value!r}"
                )
            if kind in (int, float) and value < 0:
                raise ValueError(f"records[{idx}].{name} must be >= 0, got {value!r}")
        extra = record.get("extra", {})
        if not isinstance(extra, dict):
            raise ValueError(f"records[{idx}].extra must be an object")
        unknown = set(record) - set(_RECORD_FIELDS) - {"extra"}
        if unknown:
            raise ValueError(f"records[{idx}] has unknown fields {sorted(unknown)}")


def write_bench(path: str | Path, suite: str, records: Sequence[BenchRecord]) -> Path:
    """Validate and write one suite's ``BENCH_*.json``; returns the path."""
    payload = bench_payload(suite, records)
    validate_bench(payload)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return path


def render_bench(payload: dict[str, Any]) -> str:
    """Human-readable table rendering of a bench payload.

    The text outputs under ``results/`` are produced from the JSON via
    this function — one code path, two formats.
    """
    from ..experiments.tables import format_table

    rows = []
    for record in payload["records"]:
        rows.append(
            [
                record["workload"],
                f"{record['n']:,}",
                str(record["k"]),
                str(record["jobs"]),
                f"{record['wall_s'] * 1e3:.1f}",
                f"{record['rows_per_s'] / 1e6:.2f}",
                f"{record['speedup']:.2f}x",
            ]
        )
    return format_table(
        ["workload", "n", "k", "jobs", "wall ms", "Mrows/s", "speedup"],
        rows,
        title=f"Benchmark suite: {payload['suite']} ({payload['schema']})",
    )


# --------------------------------------------------------------------- #
# Suite implementations                                                   #
# --------------------------------------------------------------------- #


def _timed(fn: Callable[[], Any], repeats: int) -> tuple[float, Any]:
    """Best-of-*repeats* wall time and the last return value."""
    best = float("inf")
    value = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def _engine_problem(n: int, dim: int = 12, groups: int = 4):
    """Adult-shaped synthetic fair-clustering workload (as in §5.1)."""
    from ..core import CategoricalSpec, NumericSpec

    rng = np.random.default_rng(0)
    points = np.vstack(
        [
            rng.normal(loc=rng.normal(0, 3, dim), size=(n // groups, dim))
            for _ in range(groups)
        ]
    )
    attr_rng = np.random.default_rng(1)
    cats = [
        CategoricalSpec(f"c{i}", attr_rng.integers(0, v, points.shape[0]), n_values=v)
        for i, v in enumerate((7, 2, 5, 9, 3))
    ]
    nums = [NumericSpec("z", attr_rng.normal(size=points.shape[0]))]
    return points, cats, nums


def _speedup_vs_baseline(records: list[BenchRecord]) -> None:
    """Fill ``speedup`` from each (workload, n, k)'s jobs=1 record."""
    baselines = {
        (r.workload, r.n, r.k): r.wall_s for r in records if r.jobs == 1
    }
    for r in records:
        base = baselines.get((r.workload, r.n, r.k))
        if base and r.wall_s > 0:
            r.speedup = base / r.wall_s


def bench_engine(
    sizes: Sequence[int],
    jobs: Sequence[int],
    *,
    k: int = 5,
    max_iter: int = 30,
    repeats: int = 1,
) -> list[BenchRecord]:
    """Training hot path: chunked FairKM + sharded mini-batch fits.

    Per (n, jobs): an end-to-end chunked fit record, a ``*_scoring``
    record isolating the parallel frozen-window scoring wall (summed
    from the fit diagnostics), and a large-batch mini-batch fit record
    (its shard scoring is the parallel section). Decisions are
    bit-identical across ``jobs`` — verified by an assertion against
    the jobs=1 labels of the same configuration.
    """
    from ..core import FairKM, MiniBatchFairKM

    records: list[BenchRecord] = []
    for n in sizes:
        points, cats, nums = _engine_problem(int(n))
        n_real = points.shape[0]
        lam = (n_real / k) ** 2
        baseline_labels: dict[str, np.ndarray] = {}
        for j in jobs:
            wall, result = _timed(
                lambda: FairKM(
                    k, lambda_=lam, seed=0, max_iter=max_iter,
                    engine="chunked", n_jobs=j,
                ).fit(points, categorical=cats, numeric=nums),
                repeats,
            )
            if "chunked" not in baseline_labels:
                baseline_labels["chunked"] = result.labels
            elif not np.array_equal(result.labels, baseline_labels["chunked"]):
                raise AssertionError(f"chunked n_jobs={j} changed the labels")
            sweeps = result.diagnostics.get("sweeps", [])
            # Only fully-chunked sweeps: a "chunked+dense_tail" sweep did
            # part of its work in the serial fallback, so its scoring_s
            # covers a job-count-dependent share of the rows and would
            # skew the cross-jobs comparison. chunked_sweeps is recorded
            # so a consumer can verify both sides summed the same set.
            chunked = [s for s in sweeps if s.get("mode") == "chunked"]
            scoring = sum(s.get("scoring_s", 0.0) for s in chunked)
            extra = {
                "n_iter": result.n_iter,
                "converged": result.converged,
                "chunked_sweeps": len(chunked),
            }
            records.append(
                BenchRecord(
                    "fairkm_chunked_fit", n_real, k, int(j),
                    wall, n_real * result.n_iter / wall if wall > 0 else 0.0,
                    extra=extra,
                )
            )
            if scoring > 0:
                records.append(
                    BenchRecord(
                        "fairkm_chunked_scoring", n_real, k, int(j),
                        scoring, n_real * len(chunked) / scoring,
                        extra=extra,
                    )
                )
            mb_wall, mb = _timed(
                lambda: MiniBatchFairKM(
                    k, batch_size=4096, lambda_=lam, seed=0, max_iter=max_iter,
                    n_jobs=j,
                ).fit(points, categorical=cats, numeric=nums),
                repeats,
            )
            if "minibatch" not in baseline_labels:
                baseline_labels["minibatch"] = mb.labels
            elif not np.array_equal(mb.labels, baseline_labels["minibatch"]):
                raise AssertionError(f"minibatch n_jobs={j} changed the labels")
            records.append(
                BenchRecord(
                    "minibatch_fairkm_fit", n_real, k, int(j),
                    mb_wall, n_real * mb.n_iter / mb_wall if mb_wall > 0 else 0.0,
                    extra={"n_iter": mb.n_iter, "batch_size": 4096},
                )
            )
    _speedup_vs_baseline(records)
    return records


def bench_assign(
    sizes: Sequence[int],
    jobs: Sequence[int],
    *,
    d: int = 14,
    k: int = 15,
    chunk_size: int | None = None,
    repeats: int = 3,
) -> list[BenchRecord]:
    """Serving hot loop: ``Assigner.assign`` rows/s across worker counts.

    Labels are asserted bit-identical to the jobs=1 run at every worker
    count (parallel chunks write disjoint output slices).
    """
    from ..api.assign import Assigner

    records: list[BenchRecord] = []
    rng = np.random.default_rng(0)
    centers = rng.normal(size=(k, d)) * 2.0
    service = Assigner(centers)
    for n in sizes:
        n = int(n)
        points = rng.normal(size=(n, d))
        baseline = service.assign(points, chunk_size=chunk_size)
        for j in jobs:
            wall, labels = _timed(
                lambda: service.assign(points, chunk_size=chunk_size, n_jobs=j),
                repeats,
            )
            if not np.array_equal(labels, baseline):
                raise AssertionError(f"assign n_jobs={j} changed the labels")
            records.append(
                BenchRecord(
                    "assigner_throughput", n, k, int(j),
                    wall, n / wall if wall > 0 else 0.0,
                    extra={"d": d, "chunk_size": chunk_size or 0},
                )
            )
    _speedup_vs_baseline(records)
    return records


def bench_serve(
    sizes: Sequence[int],
    jobs: Sequence[int],
    *,
    d: int = 14,
    k: int = 15,
    repeats: int = 3,
) -> list[BenchRecord]:
    """End-to-end serving ceiling: HTTP rows/s vs the in-process baseline.

    Publishes a synthetic model into a throwaway registry, starts an
    :class:`~repro.serving.server.AssignmentServer` on an ephemeral
    port, and measures three workloads per (n, jobs):

    * ``serve_http_npy``   — ``POST /assign`` with raw npy bytes over a
      keep-alive connection (the serving fast path);
    * ``serve_http_json``  — the same rows as JSON (interoperability
      path; dominated by encode/decode, so it is the floor — measured
      only at n ≤ 50k, past which the body size benchmarks the json
      module rather than serving);
    * ``assign_inprocess`` — ``Assigner.assign`` on the same points in
      the same process (the ceiling the HTTP hop is measured against);
    * ``serve_http_npy_raw`` — the npy workload against a second server
      with telemetry disabled (``metrics=False``): the instrumentation
      overhead guard. The npy record's ``extra["obs_overhead_ratio"]``
      carries instrumented/raw wall time, which ``repro bench compare``
      gates at ≤ 2%.

    Served labels are asserted bit-identical to the in-process baseline
    at every worker count, and the server's reported model version is
    asserted on every response.
    """
    import tempfile

    from ..api.config import RunConfig
    from ..api.model import ClusterModel
    from ..serving.client import ServingClient
    from ..serving.registry import ModelRegistry
    from ..serving.server import AssignmentServer

    rng = np.random.default_rng(0)
    centers = rng.normal(size=(k, d)) * 2.0
    model = ClusterModel(centers, RunConfig(method="kmeans", k=k))
    records: list[BenchRecord] = []
    with tempfile.TemporaryDirectory(prefix="repro-bench-serve-") as tmp:
        registry = ModelRegistry(Path(tmp) / "registry")
        version = registry.publish(model, label="bench")
        for j in jobs:
            server = AssignmentServer(registry=registry, n_jobs=int(j)).start()
            raw_server = AssignmentServer(
                registry=registry, n_jobs=int(j), metrics=False
            ).start()
            try:
                with ServingClient(port=server.port) as client, ServingClient(
                    port=raw_server.port
                ) as raw_client:
                    for n in sizes:
                        n = int(n)
                        points = rng.normal(size=(n, d))
                        baseline = server.snapshot().assigner.assign(points)
                        wall, _ = _timed(
                            lambda: server.snapshot().assigner.assign(points), repeats
                        )
                        records.append(
                            BenchRecord(
                                "assign_inprocess", n, k, int(j),
                                wall, n / wall if wall > 0 else 0.0,
                                extra={"d": d},
                            )
                        )
                        payloads = [("serve_http_npy", True)]
                        if n <= 50_000:
                            # JSON spends its wall in float <-> decimal
                            # text; past ~50k rows the 100MB+ bodies only
                            # measure the json module, not serving.
                            payloads.append(("serve_http_json", False))
                        npy_record: BenchRecord | None = None
                        for workload, npy in payloads:
                            wall, response = _timed(
                                lambda npy=npy: client.assign(points, npy=npy),
                                repeats,
                            )
                            if not np.array_equal(response.labels, baseline):
                                raise AssertionError(
                                    f"{workload} n_jobs={j} labels diverged from "
                                    "in-process assign"
                                )
                            if response.version != version:
                                raise AssertionError(
                                    f"{workload} served version {response.version!r},"
                                    f" expected {version!r}"
                                )
                            record = BenchRecord(
                                workload, n, k, int(j),
                                wall, n / wall if wall > 0 else 0.0,
                                extra={"d": d, "version": version},
                            )
                            records.append(record)
                            if workload == "serve_http_npy":
                                npy_record = record
                        # Same rows against the telemetry-off twin: the
                        # instrumentation must be near-free on the fast
                        # path, and this pair is what proves it.
                        raw_wall, raw_response = _timed(
                            lambda: raw_client.assign(points, npy=True), repeats
                        )
                        if not np.array_equal(raw_response.labels, baseline):
                            raise AssertionError(
                                f"serve_http_npy_raw n_jobs={j} labels diverged "
                                "from in-process assign"
                            )
                        raw_record = BenchRecord(
                            "serve_http_npy_raw", n, k, int(j),
                            raw_wall, n / raw_wall if raw_wall > 0 else 0.0,
                            extra={"d": d, "version": version,
                                   "instrumentation": "off"},
                        )
                        records.append(raw_record)
                        if npy_record is not None and raw_wall > 0:
                            npy_record.extra["obs_overhead_ratio"] = (
                                npy_record.wall_s / raw_wall
                            )
            finally:
                server.stop()
                raw_server.stop()
    _speedup_vs_baseline(records)
    return records


def bench_fleet(
    sizes: Sequence[int],
    fleet_sizes: Sequence[int],
    *,
    d: int = 14,
    k: int = 64,
    repeats: int = 1,
    payload_sizes: Sequence[int] | None = None,
) -> list[BenchRecord]:
    """Fleet scaling: streamed rows/s vs single server vs in-process.

    Per size *n*, the core workloads share one center matrix and one
    query set (labels asserted bit-identical throughout), and each
    measurement is **one streamed request** (`assign_stream`) so the
    single-server and fleet paths exercise the exact same wire format
    and pipelining — the only variable is the worker-process count:

    * ``assign_inprocess``    — the ``Assigner`` ceiling (jobs=1 row);
    * ``serve_http_single``   — one streamed request into one in-process
      :class:`~repro.serving.server.AssignmentServer` (jobs=1 row);
    * ``fleet_http_npy``      — the same streamed request into a real
      :class:`FleetSupervisor` fleet of ``jobs`` worker *processes*
      behind a dealing :class:`FleetProxy`.

    The suite defaults to ``k=64``: assignment cost grows with the
    center count, and the fleet's scatter win is only measurable when
    per-row compute outweighs per-row transport. Every fleet record's
    ``extra`` carries the host's ``cpu_count`` — the scaling gate in
    :func:`repro.perf.compare.fleet_gate` cannot hold a fleet to a
    speedup bar the hardware makes impossible.

    Each fleet size additionally runs a **payload-size sweep**
    (``fleet_stream_scatter``): one client streams a single request of
    ``payload_sizes`` rows (default: 1/8, 1/2 and all of the largest
    *n*) through the proxy, which deals it across the fleet. Its
    ``extra`` records ``payload_bytes`` and ``bytes_per_s`` alongside
    the usual rows/s — the wire's own ceiling as a function of body
    size.
    """
    import os
    import tempfile

    from ..api.assign import Assigner
    from ..api.config import RunConfig
    from ..api.model import ClusterModel
    from ..serving.client import ServingClient
    from ..serving.fleet import FleetSupervisor
    from ..serving.proxy import FleetProxy
    from ..serving.registry import ModelRegistry
    from ..serving.server import AssignmentServer

    fleet_sizes = [int(w) for w in fleet_sizes]
    cpu_count = os.cpu_count() or 1
    rng = np.random.default_rng(0)
    centers = rng.normal(size=(k, d)) * 2.0
    model = ClusterModel(centers, RunConfig(method="kmeans", k=k))
    assigner = Assigner(centers)
    records: list[BenchRecord] = []
    with tempfile.TemporaryDirectory(prefix="repro-bench-fleet-") as tmp:
        registry = ModelRegistry(Path(tmp) / "registry")
        version = registry.publish(model, label="bench")
        datasets = []
        for n in sizes:
            n = int(n)
            points = rng.normal(size=(n, d))
            expected = assigner.assign(points)
            datasets.append((n, points, expected))
            wall, _ = _timed(lambda pts=points: assigner.assign(pts), repeats)
            records.append(
                BenchRecord(
                    "assign_inprocess", n, k, 1,
                    wall, n / wall if wall > 0 else 0.0,
                    extra={"d": d},
                )
            )
        with AssignmentServer(registry=registry) as server:
            with ServingClient(url=server.url) as client:
                for n, points, expected in datasets:
                    wall, response = _timed(
                        lambda p=points: client.assign_stream(p), repeats
                    )
                    _check_fleet_labels("serve_http_single", response.labels,
                                        expected, {response.version}, version)
                    records.append(
                        BenchRecord(
                            "serve_http_single", n, k, 1,
                            wall, n / wall if wall > 0 else 0.0,
                            extra={"d": d, "cpu_count": cpu_count},
                        )
                    )
        for size in fleet_sizes:
            with FleetSupervisor(
                registry, workers=size, state_dir=Path(tmp) / f"fleet-{size}"
            ) as fleet:
                with FleetProxy(fleet) as proxy:
                    with ServingClient(url=proxy.url) as streamer:
                        for n, points, expected in datasets:
                            wall, response = _timed(
                                lambda p=points: streamer.assign_stream(p),
                                repeats,
                            )
                            _check_fleet_labels(
                                "fleet_http_npy", response.labels, expected,
                                {response.version}, version,
                            )
                            records.append(
                                BenchRecord(
                                    "fleet_http_npy", n, k, size,
                                    wall, n / wall if wall > 0 else 0.0,
                                    extra={
                                        "d": d,
                                        "cpu_count": cpu_count,
                                        "version": version,
                                    },
                                )
                            )
                        # Payload-size sweep: one streamed request, proxy
                        # deal across the fleet, bytes/s next to rows/s.
                        n_top, points_top, expected_top = datasets[-1]
                        ladder = (
                            [int(p) for p in payload_sizes]
                            if payload_sizes is not None
                            else sorted(
                                {max(1, n_top // 8), max(1, n_top // 2), n_top}
                            )
                        )
                        for payload_rows in ladder:
                            pts = points_top[:payload_rows]
                            wall, response = _timed(
                                lambda p=pts: streamer.assign_stream(p), repeats
                            )
                            _check_fleet_labels(
                                "fleet_stream_scatter",
                                response.labels,
                                expected_top[:payload_rows],
                                {response.version},
                                version,
                            )
                            payload_bytes = int(pts.nbytes)
                            records.append(
                                BenchRecord(
                                    "fleet_stream_scatter", payload_rows, k, size,
                                    wall,
                                    payload_rows / wall if wall > 0 else 0.0,
                                    extra={
                                        "d": d,
                                        "payload_bytes": payload_bytes,
                                        "bytes_per_s": (
                                            payload_bytes / wall if wall > 0 else 0.0
                                        ),
                                        "version": version,
                                    },
                                )
                            )
    _speedup_vs_baseline(records)
    return records


def bench_backend(
    sizes: Sequence[int],
    workers: Sequence[int],
    *,
    k: int = 5,
    max_iter: int = 10,
    batch_size: int = 16_384,
    repeats: int = 1,
) -> list[BenchRecord]:
    """Training-backend scaling: multiprocess fit vs the local baseline.

    Per size *n*, one large-batch mini-batch FairKM fit on the standard
    Adult-shaped workload through each backend:

    * ``backend_local_fit``        — the default thread-pool
      :class:`~repro.backend.LocalBackend` at jobs=1 (the
      single-process baseline the gate measures against);
    * ``backend_multiprocess_fit`` — the same fit through the
      :class:`~repro.backend.MultiprocessBackend` at each worker count
      (the ``jobs`` column is the worker-*process* count);
    * ``backend_remote_fit``       — the same fit again through the
      :class:`~repro.backend.RemoteBackend` against ``jobs`` live
      :class:`~repro.serving.server.AssignmentServer` processes-worth
      of ``POST /score`` targets (in-process servers on ephemeral
      ports, so the record measures the wire codec + HTTP hop, not
      container spin-up).

    The batch size is large (default 16384) so every batch shards into
    many per-worker scoring tasks — the section the backend
    parallelizes. Labels and centers are asserted bit-identical to the
    local baseline at every worker count (the backend contract; for
    remote, this is the bit-identity guarantee the ladder re-proves on
    every bench run), and every record's ``extra`` carries the backend
    name and the host's ``cpu_count`` —
    :func:`repro.perf.compare.backend_gate` cannot hold the backend to
    a speedup bar the hardware makes impossible. Remote rows are
    report-only in the gate: an HTTP hop per shard has no speedup
    obligation, only a correctness one.
    """
    import os
    import tempfile

    from ..api.config import RunConfig
    from ..api.model import ClusterModel
    from ..backend import RemoteBackend
    from ..core import MiniBatchFairKM
    from ..serving.registry import ModelRegistry
    from ..serving.server import AssignmentServer

    cpu_count = os.cpu_count() or 1
    records: list[BenchRecord] = []
    for n in sizes:
        points, cats, nums = _engine_problem(int(n))
        n_real = points.shape[0]
        lam = (n_real / k) ** 2

        def fit(backend: str, jobs: int):
            return MiniBatchFairKM(
                k, batch_size=batch_size, lambda_=lam, seed=0,
                max_iter=max_iter, backend=backend, workers=jobs,
            ).fit(points, categorical=cats, numeric=nums)

        wall, base = _timed(lambda: fit("local", 1), repeats)
        records.append(
            BenchRecord(
                "backend_local_fit", n_real, k, 1,
                wall, n_real * base.n_iter / wall if wall > 0 else 0.0,
                extra={
                    "backend": "local",
                    "cpu_count": cpu_count,
                    "n_iter": base.n_iter,
                    "batch_size": batch_size,
                },
            )
        )
        for j in workers:
            wall, result = _timed(lambda j=j: fit("multiprocess", int(j)), repeats)
            if not np.array_equal(result.labels, base.labels):
                raise AssertionError(
                    f"multiprocess workers={j} changed the labels"
                )
            if not np.array_equal(result.centers, base.centers):
                raise AssertionError(
                    f"multiprocess workers={j} changed the centers"
                )
            records.append(
                BenchRecord(
                    "backend_multiprocess_fit", n_real, k, int(j),
                    wall, n_real * result.n_iter / wall if wall > 0 else 0.0,
                    extra={
                        "backend": "multiprocess",
                        "cpu_count": cpu_count,
                        "n_iter": result.n_iter,
                        "batch_size": batch_size,
                    },
                )
            )
        # The remote ladder: the same fit through live /score targets.
        # The servers only need *a* published model to come up healthy;
        # scoring is stateless per request, so a tiny kmeans artifact
        # suffices and the registry is throwaway.
        with tempfile.TemporaryDirectory(prefix="repro-bench-remote-") as tmp:
            registry = ModelRegistry(Path(tmp) / "registry")
            registry.publish(
                ClusterModel(points[:k].copy(), RunConfig(method="kmeans", k=k)),
                label="bench",
            )
            for j in workers:
                servers = [
                    AssignmentServer(registry=registry).start()
                    for _ in range(int(j))
                ]
                try:
                    targets = tuple(s.url for s in servers)

                    def fit_remote(j=j, targets=targets):
                        return MiniBatchFairKM(
                            k, batch_size=batch_size, lambda_=lam, seed=0,
                            max_iter=max_iter,
                            backend=RemoteBackend(int(j), targets=targets),
                        ).fit(points, categorical=cats, numeric=nums)

                    wall, result = _timed(fit_remote, repeats)
                finally:
                    for s in servers:
                        s.stop()
                if not np.array_equal(result.labels, base.labels):
                    raise AssertionError(
                        f"remote targets={j} changed the labels"
                    )
                if not np.array_equal(result.centers, base.centers):
                    raise AssertionError(
                        f"remote targets={j} changed the centers"
                    )
                records.append(
                    BenchRecord(
                        "backend_remote_fit", n_real, k, int(j),
                        wall, n_real * result.n_iter / wall if wall > 0 else 0.0,
                        extra={
                            "backend": "remote",
                            "cpu_count": cpu_count,
                            "n_iter": result.n_iter,
                            "batch_size": batch_size,
                            "targets": int(j),
                        },
                    )
                )
    # speedup is measured against the single-process *local* fit, not
    # each workload's own jobs=1 record: the whole question the suite
    # answers is whether worker processes beat in-process scoring.
    locals_ = {
        (r.n, r.k): r.wall_s
        for r in records
        if r.workload == "backend_local_fit" and r.jobs == 1
    }
    for r in records:
        base_wall = locals_.get((r.n, r.k))
        if base_wall and r.wall_s > 0:
            r.speedup = base_wall / r.wall_s
    return records


def _check_fleet_labels(
    workload: str,
    labels: np.ndarray,
    expected: np.ndarray,
    versions: set[str],
    version: str,
) -> None:
    if not np.array_equal(labels, expected):
        raise AssertionError(
            f"{workload} labels diverged from in-process assign"
        )
    if versions != {version}:
        raise AssertionError(
            f"{workload} served versions {sorted(versions)}, expected {version!r}"
        )


# --------------------------------------------------------------------- #
# Orchestration (the ``repro bench`` implementation)                      #
# --------------------------------------------------------------------- #


def job_ladder(max_jobs: int) -> tuple[int, ...]:
    """Worker counts to sweep: 1, 2, 4, ... up to (and including) max."""
    jobs = [1]
    while jobs[-1] * 2 < max_jobs:
        jobs.append(jobs[-1] * 2)
    if max_jobs > 1:
        jobs.append(max_jobs)
    return tuple(jobs)


def run_bench(
    suite: str = "all",
    *,
    smoke: bool = False,
    max_jobs: int = 4,
    out_dir: str | Path | None = None,
    repeats: int | None = None,
) -> dict[str, Path]:
    """Run the requested suite(s); write and validate ``BENCH_*.json``.

    Args:
        suite: ``"engine"``, ``"assign"``, ``"serve"``, ``"fleet"``,
            ``"backend"`` or ``"all"``.
        smoke: small sizes for CI (seconds, not minutes).
        max_jobs: top of the worker-count ladder (always includes 1; the
            fleet and backend suites reuse it as the worker-*process*
            ladder).
        out_dir: output directory (default: the results dir, honoring
            ``REPRO_RESULTS_DIR``).
        repeats: timing repeats, best-of (default: 1 engine / 3
            assign + serve + fleet, 1 everywhere under ``smoke``).

    Returns:
        Mapping of suite name to the written JSON path.
    """
    from ..experiments.paper import RESULTS_DIR

    if suite not in (*SUITES, "all"):
        raise ValueError(f"suite must be one of {(*SUITES, 'all')}, got {suite!r}")
    out = Path(out_dir) if out_dir is not None else RESULTS_DIR
    jobs = job_ladder(max_jobs)
    engine_sizes = (2_000,) if smoke else (10_000, 100_000)
    assign_sizes = (50_000,) if smoke else (100_000, 1_000_000)
    # 50k sits at the JSON-payload cutoff so full runs still record the
    # serve_http_json floor alongside the large npy-only measurement.
    serve_sizes = (20_000,) if smoke else (50_000, 500_000)
    fleet_sizes_n = (20_000,) if smoke else (50_000, 500_000)
    # 100k is the backend gate's floor: below it shard IPC dominates the
    # arithmetic it ships, so smoke runs are reported but never gated.
    backend_sizes = (2_000,) if smoke else (100_000,)
    written: dict[str, Path] = {}
    if suite in ("engine", "all"):
        records = bench_engine(
            engine_sizes, jobs, repeats=repeats if repeats is not None else 1
        )
        written["engine"] = write_bench(out / "BENCH_engine.json", "engine", records)
    if suite in ("assign", "all"):
        records = bench_assign(
            assign_sizes,
            jobs,
            repeats=(1 if smoke else 3) if repeats is None else repeats,
        )
        written["assign"] = write_bench(out / "BENCH_assign.json", "assign", records)
    if suite in ("serve", "all"):
        records = bench_serve(
            serve_sizes,
            jobs,
            repeats=(1 if smoke else 3) if repeats is None else repeats,
        )
        written["serve"] = write_bench(out / "BENCH_serve.json", "serve", records)
    if suite in ("fleet", "all"):
        # The jobs ladder doubles as the fleet-size ladder: the suite's
        # ``jobs`` column counts worker *processes*, not threads.
        records = bench_fleet(
            fleet_sizes_n,
            jobs,
            repeats=(1 if smoke else 3) if repeats is None else repeats,
        )
        written["fleet"] = write_bench(out / "BENCH_fleet.json", "fleet", records)
    if suite in ("backend", "all"):
        # The jobs ladder doubles as the worker-process ladder here too.
        records = bench_backend(
            backend_sizes, jobs, repeats=repeats if repeats is not None else 1
        )
        written["backend"] = write_bench(
            out / "BENCH_backend.json", "backend", records
        )
    return written
