"""Fetch the previous CI run's bench artifact via the GitHub actions API.

CI uploads every run's ``BENCH_*.json`` as a workflow artifact; until
now ``repro bench compare`` could only diff two files from the *same*
run, so the perf gate measured runner noise, not the trajectory.
:func:`fetch_baseline` closes the loop: it asks the actions API for the
most recent artifact with the configured name that came from a
*different* workflow run, downloads the zip, and extracts the matching
``BENCH_*.json`` — giving ``repro bench compare --from-actions`` a real
cross-run baseline.

Everything degrades to ``None`` (caller falls back to a same-run
baseline) rather than raising: a fork PR without a token, the first run
of a new repo, an expired artifact, or a flaky API must not fail CI.

Only the standard library is used (``urllib`` + ``zipfile``); the
``opener`` parameter exists so tests can exercise the selection and
extraction logic without network access.
"""

from __future__ import annotations

import io
import json
import os
import zipfile
from pathlib import Path
from typing import Any, Callable
from urllib.error import URLError
from urllib.request import Request, urlopen

#: Default artifact name ``repro bench compare --from-actions`` looks for.
DEFAULT_ARTIFACT_NAME = "bench-results"

_API_TIMEOUT_S = 30.0


def _request(
    url: str, token: str, opener: Callable[..., Any], *, accept: str
) -> bytes:
    request = Request(
        url,
        headers={
            "Authorization": f"Bearer {token}",
            "Accept": accept,
            "X-GitHub-Api-Version": "2022-11-28",
            "User-Agent": "repro-bench-compare",
        },
    )
    with opener(request, timeout=_API_TIMEOUT_S) as response:
        return response.read()


def select_artifact(
    artifacts: list[dict[str, Any]], *, current_run_id: str | None
) -> dict[str, Any] | None:
    """The newest non-expired artifact from a run other than ours.

    Exposed separately so the choice ("previous run" really means
    previous) is testable without any network plumbing.
    """
    candidates = [
        artifact
        for artifact in artifacts
        if not artifact.get("expired")
        and artifact.get("archive_download_url")
        and str(artifact.get("workflow_run", {}).get("id", "")) != str(current_run_id)
    ]
    if not candidates:
        return None
    return max(candidates, key=lambda a: int(a.get("id", 0)))


def fetch_baseline(
    artifact_name: str,
    member_name: str,
    dest_dir: str | Path,
    *,
    repo: str | None = None,
    token: str | None = None,
    api_url: str | None = None,
    run_id: str | None = None,
    opener: Callable[..., Any] = urlopen,
) -> Path | None:
    """Download the previous run's *member_name* bench file, or ``None``.

    Args:
        artifact_name: the uploaded artifact's name (e.g.
            ``bench-records-py3.12``).
        member_name: the file wanted from inside the artifact zip
            (e.g. ``BENCH_fleet.json``).
        dest_dir: where to extract the member (created if needed).
        repo / token / api_url / run_id: default to the standard actions
            environment (``GITHUB_REPOSITORY``, ``GITHUB_TOKEN``,
            ``GITHUB_API_URL``, ``GITHUB_RUN_ID``).
        opener: ``urllib.request.urlopen``-compatible callable
            (injectable for tests).

    Returns:
        Path of the extracted baseline file, or ``None`` with a printed
        reason when no cross-run baseline is available.
    """
    repo = repo or os.environ.get("GITHUB_REPOSITORY")
    token = token or os.environ.get("GITHUB_TOKEN")
    api_url = (api_url or os.environ.get("GITHUB_API_URL") or "https://api.github.com").rstrip("/")
    run_id = run_id if run_id is not None else os.environ.get("GITHUB_RUN_ID")
    if not repo or not token:
        print("bench compare: no GITHUB_REPOSITORY/GITHUB_TOKEN; "
              "skipping artifact fetch")
        return None
    list_url = (
        f"{api_url}/repos/{repo}/actions/artifacts"
        f"?name={artifact_name}&per_page=50"
    )
    try:
        listing = json.loads(
            _request(
                list_url, token, opener, accept="application/vnd.github+json"
            ).decode("utf-8")
        )
        artifact = select_artifact(
            listing.get("artifacts", []), current_run_id=run_id
        )
        if artifact is None:
            print(f"bench compare: no previous {artifact_name!r} artifact yet")
            return None
        archive = _request(
            artifact["archive_download_url"], token, opener,
            accept="application/vnd.github+json",
        )
        with zipfile.ZipFile(io.BytesIO(archive)) as bundle:
            names = bundle.namelist()
            if member_name not in names:
                print(
                    f"bench compare: artifact {artifact['id']} has no "
                    f"{member_name!r} (members: {sorted(names)})"
                )
                return None
            dest_dir = Path(dest_dir)
            dest_dir.mkdir(parents=True, exist_ok=True)
            dest = dest_dir / member_name
            dest.write_bytes(bundle.read(member_name))
    except (URLError, OSError, ValueError, KeyError, zipfile.BadZipFile) as exc:
        print(f"bench compare: artifact fetch failed ({exc}); "
              "falling back to same-run baseline")
        return None
    print(
        f"bench compare: baseline {member_name} from run "
        f"{artifact.get('workflow_run', {}).get('id', '?')} "
        f"(artifact {artifact['id']})"
    )
    return dest
