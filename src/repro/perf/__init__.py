"""Machine-readable performance harness.

:mod:`repro.perf.harness` runs the engine/assignment/serving/fleet
benchmark suites across worker counts (the fleet suite's ``jobs``
column counts worker *processes*) and emits schema-validated
``BENCH_*.json`` files, so the perf trajectory of the repo is recorded
as data instead of ad-hoc text; :mod:`repro.perf.compare` diffs two
such records and flags rows/s regressions (``repro bench compare``,
nonzero exit for CI). ``repro bench`` is the CLI entry point;
``benchmarks/harness.py`` is the standalone wrapper.
"""

from .compare import (
    BenchComparison,
    ComparisonRow,
    compare_bench,
    compare_bench_files,
    render_comparison,
)
from .harness import (
    BENCH_SCHEMA,
    BenchRecord,
    bench_payload,
    render_bench,
    run_bench,
    validate_bench,
    write_bench,
)

__all__ = [
    "BENCH_SCHEMA",
    "BenchComparison",
    "BenchRecord",
    "ComparisonRow",
    "bench_payload",
    "compare_bench",
    "compare_bench_files",
    "render_bench",
    "render_comparison",
    "run_bench",
    "validate_bench",
    "write_bench",
]
