"""Machine-readable performance harness.

:mod:`repro.perf.harness` runs the engine/assignment/serving/fleet/
backend benchmark suites across worker counts (the fleet and backend
suites' ``jobs`` column counts worker *processes*) and emits
schema-validated ``BENCH_*.json`` files, so the perf trajectory of the
repo is recorded as data instead of ad-hoc text;
:mod:`repro.perf.compare` diffs two such records, flags rows/s
regressions and gates fleet and training-backend scaling
(``repro bench compare``, nonzero exit for CI);
:mod:`repro.perf.actions` fetches the previous CI run's bench artifact
so the gate tracks the real trajectory instead of same-run noise.
``repro bench`` is the CLI entry point; ``benchmarks/harness.py`` is
the standalone wrapper.
"""

from .actions import DEFAULT_ARTIFACT_NAME, fetch_baseline, select_artifact
from .compare import (
    BackendGateReport,
    BackendGateRow,
    BenchComparison,
    ComparisonRow,
    FleetGateReport,
    FleetGateRow,
    backend_gate,
    compare_bench,
    compare_bench_files,
    fleet_gate,
    render_backend_gate,
    render_comparison,
    render_fleet_gate,
)
from .harness import (
    BENCH_SCHEMA,
    BenchRecord,
    bench_payload,
    render_bench,
    run_bench,
    validate_bench,
    write_bench,
)

__all__ = [
    "BENCH_SCHEMA",
    "DEFAULT_ARTIFACT_NAME",
    "BackendGateReport",
    "BackendGateRow",
    "BenchComparison",
    "BenchRecord",
    "ComparisonRow",
    "FleetGateReport",
    "FleetGateRow",
    "backend_gate",
    "bench_payload",
    "compare_bench",
    "compare_bench_files",
    "fetch_baseline",
    "fleet_gate",
    "render_backend_gate",
    "render_bench",
    "render_comparison",
    "render_fleet_gate",
    "run_bench",
    "select_artifact",
    "validate_bench",
    "write_bench",
]
