"""Machine-readable performance harness.

:mod:`repro.perf.harness` runs the engine/assignment benchmark suites
across worker counts and emits schema-validated ``BENCH_*.json`` files,
so the perf trajectory of the repo is recorded as data instead of
ad-hoc text. ``repro bench`` is the CLI entry point;
``benchmarks/harness.py`` is the standalone wrapper.
"""

from .harness import (
    BENCH_SCHEMA,
    BenchRecord,
    bench_payload,
    render_bench,
    run_bench,
    validate_bench,
    write_bench,
)

__all__ = [
    "BENCH_SCHEMA",
    "BenchRecord",
    "bench_payload",
    "render_bench",
    "run_bench",
    "validate_bench",
    "write_bench",
]
