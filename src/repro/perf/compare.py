"""Perf-trend comparer: diff two ``BENCH_*.json`` records.

CI uploads a schema-validated bench file per PR (see
:mod:`repro.perf.harness`); this module closes the loop by diffing the
current file against a baseline and flagging throughput regressions::

    repro bench compare baseline.json current.json --threshold 0.9

Records are matched on their identity key ``(workload, n, k, jobs)``.
A matched pair regresses when ``current.rows_per_s`` falls below
``threshold × baseline.rows_per_s``; any regression makes the CLI exit
nonzero so CI can gate on it. Records present on only one side are
reported (a disappearing workload is information, not a crash) but do
not fail the comparison.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from .harness import validate_bench

#: Record fields forming the comparison identity.
KEY_FIELDS = ("workload", "n", "k", "jobs")

#: Default minimum current/baseline throughput ratio before flagging.
DEFAULT_THRESHOLD = 0.9


def _key(record: dict[str, Any]) -> tuple[Any, ...]:
    return tuple(record[name] for name in KEY_FIELDS)


@dataclass(frozen=True)
class ComparisonRow:
    """One matched (workload, n, k, jobs) pair across the two files."""

    workload: str
    n: int
    k: int
    jobs: int
    baseline_rows_per_s: float
    current_rows_per_s: float

    @property
    def ratio(self) -> float:
        """current / baseline throughput (∞ when the baseline was 0)."""
        if self.baseline_rows_per_s <= 0:
            return float("inf")
        return self.current_rows_per_s / self.baseline_rows_per_s

    def regressed(self, threshold: float) -> bool:
        return self.ratio < threshold


@dataclass(frozen=True)
class BenchComparison:
    """The full diff of two bench payloads."""

    suite: str
    threshold: float
    rows: list[ComparisonRow] = field(default_factory=list)
    only_baseline: list[tuple[Any, ...]] = field(default_factory=list)
    only_current: list[tuple[Any, ...]] = field(default_factory=list)

    @property
    def regressions(self) -> list[ComparisonRow]:
        return [row for row in self.rows if row.regressed(self.threshold)]

    @property
    def ok(self) -> bool:
        """True when at least one record matched and none regressed."""
        return bool(self.rows) and not self.regressions


def compare_bench(
    baseline: dict[str, Any],
    current: dict[str, Any],
    *,
    threshold: float = DEFAULT_THRESHOLD,
) -> BenchComparison:
    """Diff two validated bench payloads (same schema, any suites).

    Args:
        baseline: the reference payload (e.g. the previous run's upload).
        current: this run's payload.
        threshold: minimum acceptable current/baseline rows/s ratio.

    Raises:
        ValueError: either payload fails schema validation, or the
            threshold is not in (0, ∞).
    """
    if not threshold > 0:
        raise ValueError(f"threshold must be > 0, got {threshold}")
    validate_bench(baseline)
    validate_bench(current)
    base_records = {_key(r): r for r in baseline["records"]}
    curr_records = {_key(r): r for r in current["records"]}
    rows = [
        ComparisonRow(
            *key,
            baseline_rows_per_s=float(base_records[key]["rows_per_s"]),
            current_rows_per_s=float(curr_records[key]["rows_per_s"]),
        )
        for key in base_records
        if key in curr_records
    ]
    rows.sort(key=lambda row: (row.workload, row.n, row.k, row.jobs))
    suite = current.get("suite", "?")
    if baseline.get("suite") != suite:
        suite = f"{baseline.get('suite', '?')} vs {suite}"
    return BenchComparison(
        suite=suite,
        threshold=threshold,
        rows=rows,
        only_baseline=sorted(k for k in base_records if k not in curr_records),
        only_current=sorted(k for k in curr_records if k not in base_records),
    )


def compare_bench_files(
    baseline_path: str | Path,
    current_path: str | Path,
    *,
    threshold: float = DEFAULT_THRESHOLD,
) -> BenchComparison:
    """File-path convenience wrapper around :func:`compare_bench`."""
    baseline = json.loads(Path(baseline_path).read_text(encoding="utf-8"))
    current = json.loads(Path(current_path).read_text(encoding="utf-8"))
    return compare_bench(baseline, current, threshold=threshold)


def render_comparison(comparison: BenchComparison) -> str:
    """Human-readable report (the ``repro bench compare`` output)."""
    from ..experiments.tables import format_table

    rows = []
    for row in comparison.rows:
        flag = "REGRESSED" if row.regressed(comparison.threshold) else "ok"
        rows.append(
            [
                row.workload,
                f"{row.n:,}",
                str(row.k),
                str(row.jobs),
                f"{row.baseline_rows_per_s / 1e6:.2f}",
                f"{row.current_rows_per_s / 1e6:.2f}",
                f"{row.ratio:.2f}x",
                flag,
            ]
        )
    table = format_table(
        ["workload", "n", "k", "jobs", "base M/s", "curr M/s", "ratio", "status"],
        rows,
        title=(
            f"Bench comparison: {comparison.suite} "
            f"(threshold {comparison.threshold:.2f})"
        ),
    )
    lines = [table]
    for label, keys in (
        ("only in baseline", comparison.only_baseline),
        ("only in current", comparison.only_current),
    ):
        for key in keys:
            lines.append(f"  [{label}] {dict(zip(KEY_FIELDS, key))}")
    count = len(comparison.regressions)
    if not comparison.rows:
        lines.append("no comparable records (nothing matched on workload/n/k/jobs)")
    elif count:
        lines.append(f"{count} regression(s) below threshold {comparison.threshold:.2f}")
    else:
        lines.append(f"all {len(comparison.rows)} matched records within threshold")
    return "\n".join(lines)
