"""Perf-trend comparer: diff two ``BENCH_*.json`` records.

CI uploads a schema-validated bench file per PR (see
:mod:`repro.perf.harness`); this module closes the loop by diffing the
current file against a baseline and flagging throughput regressions::

    repro bench compare baseline.json current.json --threshold 0.9

Records are matched on their identity key ``(workload, n, k, jobs)``.
A matched pair regresses when ``current.rows_per_s`` falls below
``threshold × baseline.rows_per_s``; any regression makes the CLI exit
nonzero so CI can gate on it. Records present on only one side are
reported (a disappearing workload is information, not a crash) but do
not fail the comparison.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from .harness import validate_bench

#: Record fields forming the comparison identity.
KEY_FIELDS = ("workload", "n", "k", "jobs")

#: Default minimum current/baseline throughput ratio before flagging.
DEFAULT_THRESHOLD = 0.9


def _key(record: dict[str, Any]) -> tuple[Any, ...]:
    return tuple(record[name] for name in KEY_FIELDS)


@dataclass(frozen=True)
class ComparisonRow:
    """One matched (workload, n, k, jobs) pair across the two files."""

    workload: str
    n: int
    k: int
    jobs: int
    baseline_rows_per_s: float
    current_rows_per_s: float

    @property
    def ratio(self) -> float:
        """current / baseline throughput (∞ when the baseline was 0)."""
        if self.baseline_rows_per_s <= 0:
            return float("inf")
        return self.current_rows_per_s / self.baseline_rows_per_s

    def regressed(self, threshold: float) -> bool:
        return self.ratio < threshold


@dataclass(frozen=True)
class BenchComparison:
    """The full diff of two bench payloads."""

    suite: str
    threshold: float
    rows: list[ComparisonRow] = field(default_factory=list)
    only_baseline: list[tuple[Any, ...]] = field(default_factory=list)
    only_current: list[tuple[Any, ...]] = field(default_factory=list)

    @property
    def regressions(self) -> list[ComparisonRow]:
        return [row for row in self.rows if row.regressed(self.threshold)]

    @property
    def ok(self) -> bool:
        """True when at least one record matched and none regressed."""
        return bool(self.rows) and not self.regressions


def compare_bench(
    baseline: dict[str, Any],
    current: dict[str, Any],
    *,
    threshold: float = DEFAULT_THRESHOLD,
) -> BenchComparison:
    """Diff two validated bench payloads (same schema, any suites).

    Args:
        baseline: the reference payload (e.g. the previous run's upload).
        current: this run's payload.
        threshold: minimum acceptable current/baseline rows/s ratio.

    Raises:
        ValueError: either payload fails schema validation, or the
            threshold is not in (0, ∞).
    """
    if not threshold > 0:
        raise ValueError(f"threshold must be > 0, got {threshold}")
    validate_bench(baseline)
    validate_bench(current)
    base_records = {_key(r): r for r in baseline["records"]}
    curr_records = {_key(r): r for r in current["records"]}
    rows = [
        ComparisonRow(
            *key,
            baseline_rows_per_s=float(base_records[key]["rows_per_s"]),
            current_rows_per_s=float(curr_records[key]["rows_per_s"]),
        )
        for key in base_records
        if key in curr_records
    ]
    rows.sort(key=lambda row: (row.workload, row.n, row.k, row.jobs))
    suite = current.get("suite", "?")
    if baseline.get("suite") != suite:
        suite = f"{baseline.get('suite', '?')} vs {suite}"
    return BenchComparison(
        suite=suite,
        threshold=threshold,
        rows=rows,
        only_baseline=sorted(k for k in base_records if k not in curr_records),
        only_current=sorted(k for k in curr_records if k not in base_records),
    )


def compare_bench_files(
    baseline_path: str | Path,
    current_path: str | Path,
    *,
    threshold: float = DEFAULT_THRESHOLD,
) -> BenchComparison:
    """File-path convenience wrapper around :func:`compare_bench`."""
    baseline = json.loads(Path(baseline_path).read_text(encoding="utf-8"))
    current = json.loads(Path(current_path).read_text(encoding="utf-8"))
    return compare_bench(baseline, current, threshold=threshold)


#: Fleet-gate knobs: the top fleet size must beat the single server by
#: this factor, and speedup may not drop more than the tolerance allows
#: between consecutive fleet sizes (shared CI runners are noisy).
FLEET_GATE_MIN_SPEEDUP = 1.0
FLEET_GATE_MONOTONE_TOLERANCE = 0.9


@dataclass(frozen=True)
class FleetGateRow:
    """Fleet-vs-single-server throughput at one (n, fleet size)."""

    n: int
    jobs: int
    single_rows_per_s: float
    fleet_rows_per_s: float

    @property
    def speedup(self) -> float:
        if self.single_rows_per_s <= 0:
            return float("inf")
        return self.fleet_rows_per_s / self.single_rows_per_s


@dataclass(frozen=True)
class FleetGateReport:
    """Scaling verdict for one ``BENCH_fleet.json`` payload."""

    rows: list[FleetGateRow] = field(default_factory=list)
    problems: list[str] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return bool(self.rows) and not self.problems


def fleet_gate(
    payload: dict[str, Any],
    *,
    min_speedup: float = FLEET_GATE_MIN_SPEEDUP,
    monotone_tolerance: float = FLEET_GATE_MONOTONE_TOLERANCE,
) -> FleetGateReport:
    """Check that the fleet multiplies throughput instead of taxing it.

    For every batch size *n* in a fleet suite payload, the
    ``fleet_http_npy`` speedup over the same-*n* ``serve_http_single``
    record must

    * be **> min_speedup at the largest fleet size** — the fleet's whole
      reason to exist (a 1-worker fleet is a failover device and pays
      the proxy hop, so it is reported but not held to the bar), and
    * be **monotone in worker count** up to the tolerance — adding a
      worker process may never cost throughput.

    Both bars are **hardware-aware**: fleet records carry the recording
    host's ``cpu_count`` in ``extra``, and worker processes beyond the
    core count cannot add compute, so the speedup bar applies to the
    largest fleet size **that fits the cores** and the monotone check
    stops there too. On a single-core host neither bar is enforceable
    (every extra process is pure context-switch tax) — the report then
    carries a ``notes`` entry instead of a failure, and CI's multi-core
    runners remain the place where the gate bites.

    Returns a report whose ``problems`` list is empty when the gate
    passes; ``repro bench compare`` exits nonzero otherwise.
    """
    validate_bench(payload)
    singles = {
        r["n"]: float(r["rows_per_s"])
        for r in payload["records"]
        if r["workload"] == "serve_http_single"
    }
    fleet_records: dict[int, list[tuple[int, float]]] = {}
    cpu_count: int | None = None
    for record in payload["records"]:
        if record["workload"] == "fleet_http_npy":
            fleet_records.setdefault(record["n"], []).append(
                (int(record["jobs"]), float(record["rows_per_s"]))
            )
            cores = record.get("extra", {}).get("cpu_count")
            if isinstance(cores, int) and cores > 0:
                cpu_count = cores
    rows: list[FleetGateRow] = []
    problems: list[str] = []
    notes: list[str] = []
    if not fleet_records:
        problems.append("no fleet_http_npy records to gate on")
    for n in sorted(fleet_records):
        single = singles.get(n)
        if single is None:
            problems.append(f"n={n}: no serve_http_single baseline record")
            continue
        ladder = sorted(fleet_records[n])
        for jobs, rate in ladder:
            rows.append(FleetGateRow(n, jobs, single, rate))
        # Worker processes beyond the recording host's cores cannot add
        # compute: gate on the largest fleet size the hardware supports.
        gated = ladder
        if cpu_count is not None:
            gated = [(jobs, rate) for jobs, rate in ladder if jobs <= cpu_count]
        if len(gated) <= 1 < len(ladder):
            notes.append(
                f"n={n}: host has {cpu_count} core(s) — fleet scaling is "
                "not enforceable on this machine, reporting only"
            )
            continue
        top_jobs, top_rate = gated[-1]
        top_speedup = float("inf") if single <= 0 else top_rate / single
        if len(gated) > 1 and top_speedup <= min_speedup:
            problems.append(
                f"n={n}: fleet of {top_jobs} reaches only "
                f"{top_speedup:.2f}x the single server (need > "
                f"{min_speedup:.2f}x) — the fleet is a tax, not a multiplier"
            )
        for (jobs_a, rate_a), (jobs_b, rate_b) in zip(gated, gated[1:]):
            if rate_b < monotone_tolerance * rate_a:
                problems.append(
                    f"n={n}: throughput fell from {rate_a / 1e6:.2f} M/s at "
                    f"{jobs_a} worker(s) to {rate_b / 1e6:.2f} M/s at "
                    f"{jobs_b} — scaling is not monotone"
                )
    return FleetGateReport(rows=rows, problems=problems, notes=notes)


def render_fleet_gate(report: FleetGateReport) -> str:
    """Human-readable fleet-gate table + verdict."""
    from ..experiments.tables import format_table

    rows = [
        [
            f"{row.n:,}",
            str(row.jobs),
            f"{row.single_rows_per_s / 1e6:.2f}",
            f"{row.fleet_rows_per_s / 1e6:.2f}",
            f"{row.speedup:.2f}x",
        ]
        for row in report.rows
    ]
    table = format_table(
        ["n", "workers", "single M/s", "fleet M/s", "speedup"],
        rows,
        title="Fleet scaling gate (fleet_http_npy vs serve_http_single)",
    )
    lines = [table]
    lines.extend(f"  note: {note}" for note in report.notes)
    lines.extend(f"  GATE: {problem}" for problem in report.problems)
    lines.append(
        "fleet gate passed" if report.ok else "fleet gate FAILED"
    )
    return "\n".join(lines)


#: Backend-gate knobs: multiprocess training must beat the single-process
#: fit, but only at sizes where compute outweighs IPC — CI smoke sizes
#: (thousands of rows) sit below the floor and are reported, not gated.
BACKEND_GATE_MIN_SPEEDUP = 1.0
BACKEND_GATE_MIN_N = 100_000


@dataclass(frozen=True)
class BackendGateRow:
    """Multiprocess-vs-local fit throughput at one (n, worker count)."""

    n: int
    jobs: int
    local_rows_per_s: float
    multiprocess_rows_per_s: float

    @property
    def speedup(self) -> float:
        if self.local_rows_per_s <= 0:
            return float("inf")
        return self.multiprocess_rows_per_s / self.local_rows_per_s


@dataclass(frozen=True)
class BackendGateReport:
    """Scaling verdict for one ``BENCH_backend.json`` payload."""

    rows: list[BackendGateRow] = field(default_factory=list)
    problems: list[str] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return bool(self.rows) and not self.problems


def backend_gate(
    payload: dict[str, Any],
    *,
    min_speedup: float = BACKEND_GATE_MIN_SPEEDUP,
    min_n: int = BACKEND_GATE_MIN_N,
) -> BackendGateReport:
    """Check that the multiprocess backend buys wall-clock, not just IPC.

    For every size *n* in a backend suite payload, the
    ``backend_multiprocess_fit`` speedup over the same-*n* jobs=1
    ``backend_local_fit`` record must be **> min_speedup at the largest
    worker count** — shipping shards to worker processes has to beat
    scoring them in-process, or the backend is pure overhead.

    The bar is **hardware- and size-aware**, mirroring
    :func:`fleet_gate`: records carry the recording host's ``cpu_count``
    in ``extra``, and worker processes beyond the core count cannot add
    compute, so the bar applies to the largest worker count **that fits
    the cores**; a single-core host gets a ``notes`` entry instead of a
    failure. Sizes below *min_n* (CI smoke runs) are reported but not
    gated — at a few thousand rows the per-shard pickling round trip
    dominates the arithmetic it ships, and a "regression" there would
    only measure IPC, not the backend.

    ``backend_remote_fit`` records (the fleet ``POST /score`` ladder)
    are surfaced as report-only notes: an HTTP hop per shard has a
    correctness obligation (bit-identity, asserted while the record is
    made) but no speedup one, so remote rows never fail the gate.

    Returns a report whose ``problems`` list is empty when the gate
    passes; ``repro bench compare`` exits nonzero otherwise.
    """
    validate_bench(payload)
    locals_: dict[int, float] = {}
    for record in payload["records"]:
        if record["workload"] == "backend_local_fit" and record["jobs"] == 1:
            locals_[record["n"]] = float(record["rows_per_s"])
    mp_records: dict[int, list[tuple[int, float]]] = {}
    cpu_count: int | None = None
    for record in payload["records"]:
        if record["workload"] == "backend_multiprocess_fit":
            mp_records.setdefault(record["n"], []).append(
                (int(record["jobs"]), float(record["rows_per_s"]))
            )
            cores = record.get("extra", {}).get("cpu_count")
            if isinstance(cores, int) and cores > 0:
                cpu_count = cores
    rows: list[BackendGateRow] = []
    problems: list[str] = []
    notes: list[str] = []
    for record in payload["records"]:
        if record["workload"] == "backend_remote_fit":
            local = locals_.get(record["n"])
            ratio = (
                float(record["rows_per_s"]) / local
                if local is not None and local > 0
                else float("nan")
            )
            notes.append(
                f"n={record['n']:,}: remote targets={record['jobs']} at "
                f"{ratio:.2f}x local (report-only — the /score HTTP hop "
                "carries a bit-identity bar, not a speedup one)"
            )
    if not mp_records:
        problems.append("no backend_multiprocess_fit records to gate on")
    for n in sorted(mp_records):
        local = locals_.get(n)
        if local is None:
            problems.append(f"n={n}: no jobs=1 backend_local_fit baseline record")
            continue
        ladder = sorted(mp_records[n])
        for jobs, rate in ladder:
            rows.append(BackendGateRow(n, jobs, local, rate))
        if n < min_n:
            notes.append(
                f"n={n:,}: below the gating floor ({min_n:,} rows) — IPC "
                "dominates at smoke sizes, reporting only"
            )
            continue
        # Workers beyond the recording host's cores cannot add compute:
        # gate on the largest worker count the hardware supports.
        gated = ladder
        if cpu_count is not None:
            gated = [(jobs, rate) for jobs, rate in ladder if jobs <= cpu_count]
        if not any(jobs > 1 for jobs, _ in gated):
            notes.append(
                f"n={n:,}: host has {cpu_count} core(s) — multiprocess "
                "scaling is not enforceable on this machine, reporting only"
            )
            continue
        top_jobs, top_rate = gated[-1]
        top_speedup = float("inf") if local <= 0 else top_rate / local
        if top_speedup <= min_speedup:
            problems.append(
                f"n={n:,}: {top_jobs} worker process(es) reach only "
                f"{top_speedup:.2f}x the single-process fit (need > "
                f"{min_speedup:.2f}x) — the backend is a tax, not a multiplier"
            )
    return BackendGateReport(rows=rows, problems=problems, notes=notes)


def render_backend_gate(report: BackendGateReport) -> str:
    """Human-readable backend-gate table + verdict."""
    from ..experiments.tables import format_table

    rows = [
        [
            f"{row.n:,}",
            str(row.jobs),
            f"{row.local_rows_per_s / 1e6:.2f}",
            f"{row.multiprocess_rows_per_s / 1e6:.2f}",
            f"{row.speedup:.2f}x",
        ]
        for row in report.rows
    ]
    table = format_table(
        ["n", "workers", "local M/s", "multiproc M/s", "speedup"],
        rows,
        title="Backend scaling gate (backend_multiprocess_fit vs backend_local_fit)",
    )
    lines = [table]
    lines.extend(f"  note: {note}" for note in report.notes)
    lines.extend(f"  GATE: {problem}" for problem in report.problems)
    lines.append(
        "backend gate passed" if report.ok else "backend gate FAILED"
    )
    return "\n".join(lines)


#: Observability-gate knobs: telemetry on the serving hot path must cost
#: at most this fraction of the uninstrumented wall time. Sizes below the
#: floor measure HTTP fixed costs, not the per-row instrumentation, and
#: are reported rather than gated.
OBS_GATE_MAX_OVERHEAD = 0.02
OBS_GATE_MIN_N = 50_000


@dataclass(frozen=True)
class ObsGateRow:
    """Instrumented-vs-raw serving wall time at one (n, worker count)."""

    n: int
    jobs: int
    instrumented_wall_s: float
    raw_wall_s: float

    @property
    def overhead(self) -> float:
        """Fractional slowdown of the instrumented server (0.02 = 2%)."""
        if self.raw_wall_s <= 0:
            return 0.0
        return self.instrumented_wall_s / self.raw_wall_s - 1.0


@dataclass(frozen=True)
class ObsGateReport:
    """Instrumentation-overhead verdict for one ``BENCH_serve.json``."""

    rows: list[ObsGateRow] = field(default_factory=list)
    problems: list[str] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems


def obs_gate(
    payload: dict[str, Any],
    *,
    max_overhead: float = OBS_GATE_MAX_OVERHEAD,
    min_n: int = OBS_GATE_MIN_N,
) -> ObsGateReport:
    """Check that telemetry is near-free on the serving fast path.

    Pairs each ``serve_http_npy`` record (metrics on, the default) with
    the same-(n, k, jobs) ``serve_http_npy_raw`` record (a second
    server with ``metrics=False``) and requires the instrumented wall
    time to stay within *max_overhead* of the raw one at gate-worthy
    sizes. Below *min_n* the measurement is dominated by fixed HTTP
    costs, so undersized rows land in ``notes`` instead of
    ``problems`` — the same size-aware posture as :func:`fleet_gate`
    and :func:`backend_gate`. A payload with no raw records (an old
    bench file) gets a note, not a failure.
    """
    validate_bench(payload)
    raw: dict[tuple[int, int, int], float] = {}
    for record in payload["records"]:
        if record["workload"] == "serve_http_npy_raw":
            key = (record["n"], record["k"], record["jobs"])
            raw[key] = float(record["wall_s"])
    rows: list[ObsGateRow] = []
    problems: list[str] = []
    notes: list[str] = []
    if not raw:
        notes.append(
            "no serve_http_npy_raw records — instrumentation overhead "
            "not measured in this payload"
        )
        return ObsGateReport(rows=rows, problems=problems, notes=notes)
    paired = 0
    for record in payload["records"]:
        if record["workload"] != "serve_http_npy":
            continue
        key = (record["n"], record["k"], record["jobs"])
        raw_wall = raw.get(key)
        if raw_wall is None:
            continue
        paired += 1
        row = ObsGateRow(
            int(record["n"]), int(record["jobs"]),
            float(record["wall_s"]), raw_wall,
        )
        rows.append(row)
        if row.n < min_n:
            notes.append(
                f"n={row.n:,}: below the gating floor ({min_n:,} rows) — "
                "fixed HTTP costs dominate, reporting only"
            )
            continue
        if row.overhead > max_overhead:
            problems.append(
                f"n={row.n:,} jobs={row.jobs}: instrumentation costs "
                f"{row.overhead * 100:.1f}% of the raw serving wall "
                f"(budget {max_overhead * 100:.0f}%) — the telemetry is "
                "no longer near-free"
            )
    if not paired:
        problems.append(
            "serve_http_npy_raw records present but none paired with a "
            "serve_http_npy record at the same (n, k, jobs)"
        )
    return ObsGateReport(rows=rows, problems=problems, notes=notes)


def render_obs_gate(report: ObsGateReport) -> str:
    """Human-readable instrumentation-overhead table + verdict."""
    from ..experiments.tables import format_table

    rows = [
        [
            f"{row.n:,}",
            str(row.jobs),
            f"{row.instrumented_wall_s * 1000:.1f}",
            f"{row.raw_wall_s * 1000:.1f}",
            f"{row.overhead * 100:+.1f}%",
        ]
        for row in report.rows
    ]
    table = format_table(
        ["n", "jobs", "instrumented ms", "raw ms", "overhead"],
        rows,
        title="Instrumentation overhead gate (serve_http_npy vs serve_http_npy_raw)",
    )
    lines = [table]
    lines.extend(f"  note: {note}" for note in report.notes)
    lines.extend(f"  GATE: {problem}" for problem in report.problems)
    lines.append(
        "observability gate passed" if report.ok else "observability gate FAILED"
    )
    return "\n".join(lines)


def render_comparison(comparison: BenchComparison) -> str:
    """Human-readable report (the ``repro bench compare`` output)."""
    from ..experiments.tables import format_table

    rows = []
    for row in comparison.rows:
        flag = "REGRESSED" if row.regressed(comparison.threshold) else "ok"
        rows.append(
            [
                row.workload,
                f"{row.n:,}",
                str(row.k),
                str(row.jobs),
                f"{row.baseline_rows_per_s / 1e6:.2f}",
                f"{row.current_rows_per_s / 1e6:.2f}",
                f"{row.ratio:.2f}x",
                flag,
            ]
        )
    table = format_table(
        ["workload", "n", "k", "jobs", "base M/s", "curr M/s", "ratio", "status"],
        rows,
        title=(
            f"Bench comparison: {comparison.suite} "
            f"(threshold {comparison.threshold:.2f})"
        ),
    )
    lines = [table]
    for label, keys in (
        ("only in baseline", comparison.only_baseline),
        ("only in current", comparison.only_current),
    ):
        for key in keys:
            lines.append(f"  [{label}] {dict(zip(KEY_FIELDS, key))}")
    count = len(comparison.regressions)
    if not comparison.rows:
        lines.append("no comparable records (nothing matched on workload/n/k/jobs)")
    elif count:
        lines.append(f"{count} regression(s) below threshold {comparison.threshold:.2f}")
    else:
        lines.append(f"all {len(comparison.rows)} matched records within threshold")
    return "\n".join(lines)
