"""Small shared helpers for working with label vectors."""

from __future__ import annotations

import numpy as np


def validate_labels(labels: np.ndarray, k: int, n: int | None = None) -> np.ndarray:
    """Validate and canonicalize a label vector.

    Ensures labels are integral, 1-D, within ``[0, k)`` and (optionally) of
    length *n*. Returns an ``int64`` copy.
    """
    labels = np.asarray(labels)
    if labels.ndim != 1:
        raise ValueError(f"labels must be 1-D, got shape {labels.shape}")
    if n is not None and labels.shape[0] != n:
        raise ValueError(f"expected {n} labels, got {labels.shape[0]}")
    if not np.issubdtype(labels.dtype, np.integer):
        if not np.all(labels == np.floor(labels)):
            raise ValueError("labels must be integers")
    labels = labels.astype(np.int64)
    if labels.size and (labels.min() < 0 or labels.max() >= k):
        raise ValueError(
            f"labels must lie in [0, {k}), got range [{labels.min()}, {labels.max()}]"
        )
    return labels


def cluster_sizes(labels: np.ndarray, k: int) -> np.ndarray:
    """Cluster cardinalities ``|C|`` as an int64 array of length k."""
    return np.bincount(validate_labels(labels, k), minlength=k)


def relabel_by_size(labels: np.ndarray, k: int) -> np.ndarray:
    """Renumber clusters so cluster 0 is the largest — handy for stable
    cross-run comparisons in tests and reports."""
    labels = validate_labels(labels, k)
    order = np.argsort(-np.bincount(labels, minlength=k), kind="stable")
    mapping = np.empty(k, dtype=np.int64)
    mapping[order] = np.arange(k)
    return mapping[labels]


def contingency_matrix(labels_a: np.ndarray, labels_b: np.ndarray, ka: int, kb: int) -> np.ndarray:
    """Contingency counts ``M[i, j] = |{x : a(x)=i, b(x)=j}|``.

    Substrate for pair-counting comparison measures (the paper's DevO).
    """
    labels_a = validate_labels(labels_a, ka)
    labels_b = validate_labels(labels_b, kb, n=labels_a.shape[0])
    m = np.zeros((ka, kb), dtype=np.int64)
    np.add.at(m, (labels_a, labels_b), 1)
    return m
