"""Cluster initialization strategies.

Two families are provided:

* ``random_assignment`` — every object is assigned to a uniformly random
  cluster. This is the paper's Step 1 ("Initialize k clusters randomly")
  and the default for FairKM.
* ``kmeans_plus_plus`` — D²-weighted seeding (Arthur & Vassilvitskii 2007);
  the standard strong initializer for Lloyd's K-Means.
* ``random_points`` — k distinct objects chosen uniformly as seeds.

All functions accept a ``numpy.random.Generator`` so experiments are
reproducible seed-for-seed.
"""

from __future__ import annotations

import numpy as np

from .distance import pairwise_sq_euclidean

#: Names accepted by :func:`initial_labels` / :func:`initial_centers`.
INIT_STRATEGIES = ("random", "random_points", "kmeans++")


def random_assignment(n: int, k: int, rng: np.random.Generator) -> np.ndarray:
    """Uniformly random labels in ``[0, k)``, re-drawn until every cluster
    is non-empty (guaranteed possible when ``n >= k``)."""
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    if n < k:
        raise ValueError(f"cannot split {n} objects into {k} non-empty clusters")
    labels = rng.integers(0, k, size=n)
    # Repair: give each empty cluster one object stolen from the largest
    # cluster, so the initial state always has k non-empty clusters.
    counts = np.bincount(labels, minlength=k)
    for empty in np.flatnonzero(counts == 0):
        donor = int(np.argmax(counts))
        victims = np.flatnonzero(labels == donor)
        victim = victims[rng.integers(0, victims.size)]
        labels[victim] = empty
        counts[donor] -= 1
        counts[empty] += 1
    return labels


def random_points(points: np.ndarray, k: int, rng: np.random.Generator) -> np.ndarray:
    """Choose *k* distinct rows of *points* as initial centers."""
    n = points.shape[0]
    if n < k:
        raise ValueError(f"cannot pick {k} centers from {n} points")
    idx = rng.choice(n, size=k, replace=False)
    return np.array(points[idx], dtype=np.float64)


def kmeans_plus_plus(points: np.ndarray, k: int, rng: np.random.Generator) -> np.ndarray:
    """k-means++ (D²) seeding.

    The first center is uniform; each subsequent center is drawn with
    probability proportional to the squared distance to the nearest center
    chosen so far.
    """
    points = np.asarray(points, dtype=np.float64)
    n = points.shape[0]
    if n < k:
        raise ValueError(f"cannot pick {k} centers from {n} points")
    centers = np.empty((k, points.shape[1]), dtype=np.float64)
    first = int(rng.integers(0, n))
    centers[0] = points[first]
    d2 = pairwise_sq_euclidean(points, centers[0:1])[:, 0]
    for i in range(1, k):
        total = d2.sum()
        if total <= 0.0:
            # All remaining points coincide with existing centers; any
            # choice is equivalent.
            choice = int(rng.integers(0, n))
        else:
            choice = int(rng.choice(n, p=d2 / total))
        centers[i] = points[choice]
        new_d2 = pairwise_sq_euclidean(points, centers[i : i + 1])[:, 0]
        np.minimum(d2, new_d2, out=d2)
    return centers


def initial_centers(
    points: np.ndarray, k: int, strategy: str, rng: np.random.Generator
) -> np.ndarray:
    """Return initial centers for the requested *strategy*.

    ``"random"`` draws random labels and returns the implied centroids, so
    every strategy yields a ``(k, d)`` center matrix.
    """
    if strategy == "kmeans++":
        return kmeans_plus_plus(points, k, rng)
    if strategy == "random_points":
        return random_points(points, k, rng)
    if strategy == "random":
        labels = random_assignment(points.shape[0], k, rng)
        return centroids_from_labels(points, labels, k)
    raise ValueError(f"unknown init strategy {strategy!r}; expected one of {INIT_STRATEGIES}")


def initial_labels(
    points: np.ndarray, k: int, strategy: str, rng: np.random.Generator
) -> np.ndarray:
    """Return an initial label vector for the requested *strategy*.

    Center-based strategies assign each point to its nearest seed.
    """
    if strategy == "random":
        return random_assignment(points.shape[0], k, rng)
    centers = initial_centers(points, k, strategy, rng)
    d2 = pairwise_sq_euclidean(points, centers)
    return np.argmin(d2, axis=1)


def centroids_from_labels(points: np.ndarray, labels: np.ndarray, k: int) -> np.ndarray:
    """Mean of each cluster; empty clusters get the global mean.

    Using the global mean (rather than zeros) keeps empty-cluster centroids
    inside the data's bounding box, which matters for DevC-style metrics.
    """
    points = np.asarray(points, dtype=np.float64)
    labels = np.asarray(labels)
    d = points.shape[1]
    sums = np.zeros((k, d), dtype=np.float64)
    np.add.at(sums, labels, points)
    counts = np.bincount(labels, minlength=k).astype(np.float64)
    centers = np.empty_like(sums)
    nonempty = counts > 0
    centers[nonempty] = sums[nonempty] / counts[nonempty, None]
    if not nonempty.all():
        centers[~nonempty] = points.mean(axis=0)
    return centers
