"""Vectorized distance computations used across the clustering substrate.

Everything operates on 2-D ``numpy`` arrays of shape ``(n, d)`` (rows are
objects). Squared Euclidean distance is the workhorse: both K-Means and
FairKM measure cluster coherence with it, matching the paper's
``dist_N(X, C)`` term.
"""

from __future__ import annotations

import numpy as np


def squared_norms(points: np.ndarray) -> np.ndarray:
    """Return ``‖x‖²`` for each row of *points* as a 1-D array."""
    points = np.asarray(points, dtype=np.float64)
    return np.einsum("ij,ij->i", points, points)


def pairwise_sq_euclidean(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """All-pairs squared Euclidean distances between rows of *a* and *b*.

    Uses the expansion ``‖a−b‖² = ‖a‖² − 2 a·b + ‖b‖²`` and clips tiny
    negative values produced by floating-point cancellation to zero.
    """
    a = np.atleast_2d(np.asarray(a, dtype=np.float64))
    b = np.atleast_2d(np.asarray(b, dtype=np.float64))
    if a.shape[1] != b.shape[1]:
        raise ValueError(
            f"dimension mismatch: a has {a.shape[1]} columns, b has {b.shape[1]}"
        )
    cross = a @ b.T
    d2 = squared_norms(a)[:, None] - 2.0 * cross + squared_norms(b)[None, :]
    np.maximum(d2, 0.0, out=d2)
    return d2


def pairwise_euclidean(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """All-pairs Euclidean distances between rows of *a* and *b*."""
    return np.sqrt(pairwise_sq_euclidean(a, b))


def nearest_center(points: np.ndarray, centers: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Assign each row of *points* to its nearest row of *centers*.

    Returns ``(labels, sq_distances)`` where ``labels[i]`` is the index of
    the closest center and ``sq_distances[i]`` the squared distance to it.
    """
    d2 = pairwise_sq_euclidean(points, centers)
    labels = np.argmin(d2, axis=1)
    return labels, d2[np.arange(d2.shape[0]), labels]


def inertia(points: np.ndarray, centers: np.ndarray, labels: np.ndarray) -> float:
    """Sum of squared distances of each point to its assigned center.

    This is the paper's Clustering Objective (CO, Eq. 24) when *centers*
    are the cluster means over the non-sensitive attributes.
    """
    points = np.asarray(points, dtype=np.float64)
    centers = np.asarray(centers, dtype=np.float64)
    labels = np.asarray(labels)
    diffs = points - centers[labels]
    return float(np.einsum("ij,ij->", diffs, diffs))
