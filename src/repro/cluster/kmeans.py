"""Lloyd's K-Means, implemented from scratch.

This is both the paper's ``K-Means(N)`` baseline (S-blind clustering over
the non-sensitive attributes) and the coherence substrate FairKM builds on.

The implementation follows the classic alternating scheme:

1. assign every point to its nearest centroid (squared Euclidean);
2. recompute centroids as cluster means;
3. stop when assignments no longer change, the inertia improvement falls
   below ``tol``, or ``max_iter`` is reached.

Empty clusters are repaired by re-seeding them at the point farthest from
its current centroid, which keeps k clusters alive — the conventional
engineering fix (scikit-learn uses the same idea).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..core.protocol import EstimatorMixin
from .distance import inertia, pairwise_sq_euclidean
from .init import INIT_STRATEGIES, centroids_from_labels, initial_centers


@dataclass
class KMeansResult:
    """Outcome of a K-Means run.

    Attributes:
        labels: cluster index per object, shape ``(n,)``.
        centers: final centroids, shape ``(k, d)``.
        inertia: sum of squared distances to assigned centroids (the
            paper's CO measure, Eq. 24).
        n_iter: iterations executed.
        converged: True when assignments stabilized before ``max_iter``.
        inertia_history: inertia after each assignment step.
    """

    labels: np.ndarray
    centers: np.ndarray
    inertia: float
    n_iter: int
    converged: bool
    inertia_history: list[float] = field(default_factory=list)

    @property
    def k(self) -> int:
        return self.centers.shape[0]

    def assign(self, points: np.ndarray) -> np.ndarray:
        """Assign new objects to their nearest fitted centroid."""
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        if points.shape[1] != self.centers.shape[1]:
            raise ValueError(
                f"expected {self.centers.shape[1]} features, got {points.shape[1]}"
            )
        d2 = pairwise_sq_euclidean(points, self.centers)
        return np.argmin(d2, axis=1)


class KMeans(EstimatorMixin):
    """From-scratch Lloyd's K-Means.

    Args:
        k: number of clusters.
        init: one of ``"kmeans++"`` (default), ``"random_points"``,
            ``"random"`` (random assignment, the paper's FairKM init).
        max_iter: iteration cap.
        tol: relative inertia-improvement threshold for convergence.
        n_init: number of restarts; the run with the lowest inertia wins.
        seed: RNG seed (int) or a ``numpy.random.Generator``.

    Example:
        >>> import numpy as np
        >>> pts = np.vstack([np.zeros((5, 2)), np.ones((5, 2)) * 9])
        >>> res = KMeans(k=2, seed=0).fit(pts)
        >>> sorted(np.bincount(res.labels).tolist())
        [5, 5]
    """

    def __init__(
        self,
        k: int,
        *,
        init: str = "kmeans++",
        max_iter: int = 300,
        tol: float = 1e-7,
        n_init: int = 1,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        if init not in INIT_STRATEGIES:
            raise ValueError(f"init must be one of {INIT_STRATEGIES}, got {init!r}")
        if max_iter <= 0:
            raise ValueError(f"max_iter must be positive, got {max_iter}")
        if n_init <= 0:
            raise ValueError(f"n_init must be positive, got {n_init}")
        self.k = k
        self.init = init
        self.max_iter = max_iter
        self.tol = tol
        self.n_init = n_init
        self._rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)

    def fit(self, points: np.ndarray, *, sensitive: Any = None) -> KMeansResult:
        """Cluster *points* (shape ``(n, d)``) and return the best restart.

        ``sensitive`` is accepted for protocol uniformity and ignored:
        K-Means(N) is the S-blind reference method.
        """
        del sensitive
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2:
            raise ValueError(f"points must be 2-D, got shape {points.shape}")
        if points.shape[0] < self.k:
            raise ValueError(
                f"need at least k={self.k} points, got {points.shape[0]}"
            )
        best: KMeansResult | None = None
        for _ in range(self.n_init):
            result = self._fit_once(points)
            if best is None or result.inertia < best.inertia:
                best = result
        assert best is not None
        self.result_ = best
        return best

    def _fit_once(self, points: np.ndarray) -> KMeansResult:
        centers = initial_centers(points, self.k, self.init, self._rng)
        labels = np.full(points.shape[0], -1, dtype=np.int64)
        history: list[float] = []
        converged = False
        n_iter = 0
        prev_inertia = np.inf
        for n_iter in range(1, self.max_iter + 1):
            d2 = pairwise_sq_euclidean(points, centers)
            new_labels = np.argmin(d2, axis=1)
            new_labels = self._repair_empty(points, new_labels, d2)
            cur_inertia = inertia(points, centroids_from_labels(points, new_labels, self.k), new_labels)
            history.append(cur_inertia)
            if np.array_equal(new_labels, labels):
                converged = True
                break
            labels = new_labels
            centers = centroids_from_labels(points, labels, self.k)
            if np.isfinite(prev_inertia) and (
                prev_inertia - cur_inertia <= self.tol * max(prev_inertia, 1.0)
            ):
                converged = True
                break
            prev_inertia = cur_inertia
        centers = centroids_from_labels(points, labels, self.k)
        return KMeansResult(
            labels=labels,
            centers=centers,
            inertia=inertia(points, centers, labels),
            n_iter=n_iter,
            converged=converged,
            inertia_history=history,
        )

    def _repair_empty(
        self, points: np.ndarray, labels: np.ndarray, d2: np.ndarray
    ) -> np.ndarray:
        """Reseed each empty cluster with the point worst-served by its
        current assignment (largest distance to its own centroid)."""
        counts = np.bincount(labels, minlength=self.k)
        empties = np.flatnonzero(counts == 0)
        if empties.size == 0:
            return labels
        labels = labels.copy()
        assigned_d2 = d2[np.arange(d2.shape[0]), labels]
        for empty in empties:
            # Don't steal from singleton clusters — that would just move
            # the hole around.
            counts = np.bincount(labels, minlength=self.k)
            eligible = counts[labels] > 1
            if not eligible.any():
                break
            candidate_d2 = np.where(eligible, assigned_d2, -np.inf)
            worst = int(np.argmax(candidate_d2))
            labels[worst] = empty
            assigned_d2[worst] = 0.0
        return labels


def kmeans_fit(
    points: np.ndarray,
    k: int,
    *,
    seed: int | np.random.Generator | None = None,
    **kwargs,
) -> KMeansResult:
    """Convenience wrapper: ``KMeans(k, seed=seed, **kwargs).fit(points)``."""
    return KMeans(k, seed=seed, **kwargs).fit(points)
