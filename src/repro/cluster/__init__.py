"""From-scratch clustering substrate: distances, initializers, K-Means.

This package provides the pieces the paper's baselines and FairKM itself
stand on. Nothing here knows about fairness; it is plain geometry.
"""

from .distance import (
    inertia,
    nearest_center,
    pairwise_euclidean,
    pairwise_sq_euclidean,
    squared_norms,
)
from .init import (
    INIT_STRATEGIES,
    centroids_from_labels,
    initial_centers,
    initial_labels,
    kmeans_plus_plus,
    random_assignment,
    random_points,
)
from .kmeans import KMeans, KMeansResult, kmeans_fit
from .utils import cluster_sizes, contingency_matrix, relabel_by_size, validate_labels

__all__ = [
    "INIT_STRATEGIES",
    "KMeans",
    "KMeansResult",
    "centroids_from_labels",
    "cluster_sizes",
    "contingency_matrix",
    "inertia",
    "initial_centers",
    "initial_labels",
    "kmeans_fit",
    "kmeans_plus_plus",
    "nearest_center",
    "pairwise_euclidean",
    "pairwise_sq_euclidean",
    "random_assignment",
    "random_points",
    "relabel_by_size",
    "squared_norms",
    "validate_labels",
]
