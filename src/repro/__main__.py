"""Allow ``python -m repro <experiment-id>`` (same as the ``repro`` script)."""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
