"""repro — production-quality reproduction of FairKM (EDBT 2020).

"Fairness in Clustering with Multiple Sensitive Attributes",
S. S. Abraham, Deepak P, S. S. Sundaram.

Quickstart::

    import numpy as np
    from repro import FairKM, CategoricalSpec

    x = np.random.default_rng(0).normal(size=(200, 4))
    gender = CategoricalSpec("gender", np.random.default_rng(1).integers(0, 2, 200))
    result = FairKM(k=4, seed=0).fit(x, categorical=[gender])
    print(result.labels, result.fairness_term)

Deployment (train once / assign many) goes through the public facade::

    from repro.api import RunConfig, fit, ClusterModel

    model = fit(RunConfig(method="fairkm", k=4, seed=0), x,
                sensitive={"gender": gender.codes})
    model.save("artifacts/m")
    labels = ClusterModel.load("artifacts/m").assign(new_points)

Subpackages:

* ``repro.api``         — public facade: RunConfig, fit, ClusterModel.
* ``repro.core``        — FairKM itself (+ mini-batch extension).
* ``repro.cluster``     — from-scratch K-Means substrate.
* ``repro.baselines``   — ZGYA, fairlets, Bera-LP fair clustering.
* ``repro.metrics``     — CO/SH/DevC/DevO and AE/AW/ME/MW.
* ``repro.data``        — schema/dataset layer, Adult & Kinematics generators.
* ``repro.text``        — tokenizer, Doc2Vec (PV-DBOW), LSA.
* ``repro.experiments`` — multi-seed harness regenerating every paper table/figure.
* ``repro.serving``     — registry, HTTP server, multi-process fleet + proxy.
* ``repro.perf``        — benchmark harness (BENCH_*.json) and trend comparer.

The ``docs/`` tree documents the architecture (docs/architecture.md),
the public API surface (docs/api.md) and fleet operations
(docs/serving-runbook.md).
"""

from .api import ClusterModel, RunConfig
from .cluster import KMeans, KMeansResult, kmeans_fit
from .core import (
    CategoricalSpec,
    ClusterState,
    FairKM,
    FairKMConfig,
    FairKMResult,
    MiniBatchFairKM,
    NumericSpec,
    default_lambda,
    fairkm_fit,
)
from .metrics import (
    FairnessReport,
    balance,
    centroid_deviation,
    clustering_objective,
    fairness_report,
    object_pair_deviation,
    silhouette_score,
)

__version__ = "1.0.0"

__all__ = [
    "CategoricalSpec",
    "ClusterModel",
    "ClusterState",
    "FairKM",
    "FairKMConfig",
    "FairKMResult",
    "FairnessReport",
    "KMeans",
    "KMeansResult",
    "MiniBatchFairKM",
    "NumericSpec",
    "RunConfig",
    "balance",
    "centroid_deviation",
    "clustering_objective",
    "default_lambda",
    "fairkm_fit",
    "fairness_report",
    "kmeans_fit",
    "object_pair_deviation",
    "silhouette_score",
    "__version__",
]
