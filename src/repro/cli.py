"""Command-line interface: regenerate any paper table or figure.

Usage::

    repro list                      # show available experiments
    repro table5                    # regenerate Table 5 (scaled-down)
    repro table6 --seeds 5 --adult-n 4000
    repro all                       # every table and figure
    repro table5 --engine chunked   # vectorized FairKM sweeps
    REPRO_BENCH_FULL=1 repro table6 # paper-scale run

Output is printed and also written under ``results/``.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from .experiments.paper import EXPERIMENTS


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate tables/figures from 'Fairness in Clustering "
        "with Multiple Sensitive Attributes' (EDBT 2020).",
    )
    parser.add_argument(
        "experiment",
        choices=[*EXPERIMENTS, "all", "list"],
        help="experiment id (tableN / figN-M), 'all', or 'list'",
    )
    parser.add_argument(
        "--seeds",
        type=int,
        default=None,
        help="random restarts per configuration (default: env REPRO_BENCH_SEEDS or 3)",
    )
    parser.add_argument(
        "--adult-n",
        type=int,
        default=None,
        help="Adult rows before parity undersampling (default: env REPRO_BENCH_ADULT_N or 6000)",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="paper-scale settings (100 seeds, 32561 Adult rows)",
    )
    parser.add_argument(
        "--engine",
        choices=["sequential", "chunked", "minibatch"],
        default=None,
        help="FairKM sweep strategy: 'sequential' (paper-literal), "
        "'chunked' (vectorized, identical results, fastest at scale) or "
        "'minibatch' (§6.1 approximation); default: env REPRO_ENGINE or sequential",
    )
    parser.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        help="chunk size of the chunked engine / batch size of minibatch "
        "(default: env REPRO_CHUNK_SIZE or the engine default)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.experiment == "list":
        for name, (_, description) in EXPERIMENTS.items():
            print(f"{name:10s} {description}")
        return 0
    if args.full:
        os.environ["REPRO_BENCH_FULL"] = "1"
    if args.seeds is not None:
        os.environ["REPRO_BENCH_SEEDS"] = str(args.seeds)
    if args.adult_n is not None:
        os.environ["REPRO_BENCH_ADULT_N"] = str(args.adult_n)
    if args.engine is not None:
        os.environ["REPRO_ENGINE"] = args.engine
    if args.chunk_size is not None:
        if args.chunk_size <= 0:
            parser_error = f"--chunk-size must be positive, got {args.chunk_size}"
            print(parser_error, file=sys.stderr)
            return 2
        os.environ["REPRO_CHUNK_SIZE"] = str(args.chunk_size)

    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        fn, description = EXPERIMENTS[name]
        print(f"== {name}: {description} ==")
        start = time.time()
        print(fn())
        print(f"[{name} done in {time.time() - start:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
