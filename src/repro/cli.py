"""Command-line interface: fit, serve and evaluate clustering artifacts,
and regenerate any paper table or figure.

Subcommands::

    repro fit --dataset adult --method fairkm -k 5 --out artifacts/m
    repro predict --model artifacts/m --data points.npy --out labels.npy
    repro evaluate --model artifacts/m --dataset adult
    repro registry publish --registry registry/ --model artifacts/m
    repro serve --registry registry/ --port 8000
    repro fleet up --registry registry/ --workers 4 --port 8100
    repro fleet rollout --registry registry/ --version v0007
    repro paper table5 --seeds 5 --engine chunked
    repro paper list
    repro bench --smoke --jobs 2
    repro bench compare old/BENCH_assign.json results/BENCH_assign.json

``repro fit`` / ``repro predict`` are the train-once / assign-many
split: ``fit`` writes a portable :class:`~repro.api.ClusterModel`
artifact, ``predict`` serves batched S-blind assignment from it. All
knobs travel through :class:`~repro.api.RunConfig` (``--config run.json``
loads one; explicit flags override it) — the process environment is
never mutated; ``REPRO_*`` variables are read as defaults only.

The pre-subcommand spellings (``repro table5``, ``repro all``,
``repro list``) keep working as deprecated aliases for ``repro paper``.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Any

import numpy as np

from .api import BACKENDS, ENGINES, ClusterModel, METHOD_REGISTRY, RunConfig
from .api import fit as api_fit
from .experiments.paper import EXPERIMENTS, BenchSettings, bench_scale

#: Prefix marking sensitive-attribute arrays inside an ``.npz`` input.
SENSITIVE_PREFIX = "sensitive_"


def positive_int(text: str) -> int:
    """argparse type: strictly positive integer (standard usage error)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid int value: {text!r}") from None
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be positive, got {value}")
    return value


def jobs_value(text: str) -> int:
    """argparse type: worker count — a positive integer or -1 (per CPU)."""
    from .core.parallel import validate_n_jobs

    try:
        return validate_n_jobs(int(text))
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def workers_value(text: str) -> int | str:
    """argparse type: worker count — a positive integer, -1, or 'auto'."""
    from .core.parallel import validate_workers

    try:
        value: int | str = text if text == "auto" else int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f'workers must be a positive integer, -1, or "auto", got {text!r}'
        ) from None
    try:
        return validate_workers(value, field="workers")
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def lambda_value(text: str) -> float | str:
    """argparse type: a non-negative float or the string ``auto``."""
    if text == "auto":
        return "auto"
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f'lambda must be a number or "auto", got {text!r}'
        ) from None
    if value < 0:
        raise argparse.ArgumentTypeError(f"lambda must be non-negative, got {value}")
    return value


def _add_dataset_arguments(parser: argparse.ArgumentParser, *, with_data: bool) -> None:
    parser.add_argument(
        "--dataset",
        choices=["adult", "kinematics", "synthetic"],
        default=None,
        help="built-in workload (Adult is parity-undersampled as in §5.1)",
    )
    parser.add_argument(
        "--adult-n",
        type=positive_int,
        default=None,
        help="Adult rows before parity undersampling "
        "(default: env REPRO_BENCH_ADULT_N or 6000)",
    )
    if with_data:
        parser.add_argument(
            "--data",
            type=Path,
            default=None,
            help="feature matrix file: .npy, .csv, or .npz with a 'points' "
            f"array (plus optional '{SENSITIVE_PREFIX}<name>' arrays)",
        )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Fair clustering with multiple sensitive attributes "
        "(EDBT 2020): fit portable models, serve batched assignment, "
        "regenerate the paper's tables and figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True, metavar="command")

    # ------------------------------------------------------------- fit #
    p_fit = sub.add_parser(
        "fit",
        help="fit a clustering method and save a portable model artifact",
        description="Fit any registered method on a built-in dataset or a "
        "matrix file and write a versioned ClusterModel artifact "
        "(model.json + model.npz).",
    )
    _add_dataset_arguments(p_fit, with_data=True)
    p_fit.add_argument(
        "--method", choices=sorted(METHOD_REGISTRY), default=None,
        help="clustering method (default fairkm)",
    )
    p_fit.add_argument("-k", type=positive_int, default=None, help="number of clusters")
    p_fit.add_argument(
        "--lambda", dest="lambda_", type=lambda_value, default=None,
        help='fairness weight or "auto" (the §5.4 heuristic)',
    )
    p_fit.add_argument(
        "--engine", choices=list(ENGINES), default=None,
        help="FairKM sweep strategy: 'sequential' (paper-literal), "
        "'chunked' (vectorized, identical results, fastest at scale) or "
        "'minibatch' (§6.1 approximation)",
    )
    p_fit.add_argument(
        "--chunk-size", type=positive_int, default=None,
        help="chunk size of the chunked engine / batch size of minibatch",
    )
    p_fit.add_argument(
        "--jobs", type=jobs_value, default=None,
        help="worker threads for the parallel scoring paths (default 1; "
        "-1 = one per CPU; results are identical for every value)",
    )
    p_fit.add_argument(
        "--backend", choices=list(BACKENDS), default=None,
        help="training execution backend: 'local' (thread pool, default), "
        "'multiprocess' (worker processes over shared memory; bit-identical "
        "results) or 'remote' (fleet workers over POST /score; bit-identical "
        "too — loopback without --targets)",
    )
    p_fit.add_argument(
        "--workers", type=workers_value, default=None,
        help="worker count for --backend (positive int, -1 or 'auto' = one "
        "per usable CPU; default: inherit --jobs)",
    )
    p_fit.add_argument(
        "--targets", nargs="+", default=None, metavar="URL",
        help="fleet worker URLs for --backend remote (http://host:port or "
        "http+unix:///path; 'repro fleet targets' prints a live fleet's)",
    )
    p_fit.add_argument("--max-iter", type=positive_int, default=None)
    p_fit.add_argument("--seed", type=int, default=None, help="RNG seed (default 0)")
    p_fit.add_argument(
        "--no-scale", action="store_true",
        help="skip z-scoring numeric features (for embedding spaces)",
    )
    p_fit.add_argument(
        "--sensitive", default=None,
        help="comma-separated sensitive attribute names to fair-cluster on "
        "(default: all available)",
    )
    p_fit.add_argument(
        "--config", type=Path, default=None,
        help="RunConfig JSON file; explicit flags override its values",
    )
    p_fit.add_argument(
        "--out", "-o", type=Path, default=Path("results/model"),
        help="artifact output directory (default results/model)",
    )
    p_fit.add_argument(
        "--metrics-out", type=Path, default=None, metavar="FILE",
        help="write the run's telemetry profile (per-sweep counters, "
        "move rates, phase wall-time histograms) as JSON to FILE",
    )

    # --------------------------------------------------------- predict #
    p_pred = sub.add_parser(
        "predict",
        help="batch-assign points with a saved model artifact",
        description="Load a ClusterModel artifact and route points to their "
        "nearest center (S-blind serving path).",
    )
    p_pred.add_argument("--model", "-m", type=Path, required=True,
                        help="artifact directory written by 'repro fit'")
    _add_dataset_arguments(p_pred, with_data=True)
    p_pred.add_argument(
        "--chunk-size", type=positive_int, default=None,
        help="rows scored per batch (default 8192)",
    )
    p_pred.add_argument(
        "--jobs", type=jobs_value, default=None,
        help="worker threads fanning assignment chunks out "
        "(default: the model config's n_jobs; labels identical for every value)",
    )
    p_pred.add_argument(
        "--out", "-o", type=Path, default=None,
        help="write labels to this file (.npy, or text with one label per line)",
    )

    # -------------------------------------------------------- evaluate #
    p_eval = sub.add_parser(
        "evaluate",
        help="score a saved model on a dataset (quality + fairness)",
        description="Assign a dataset through a saved artifact and report the "
        "paper's §5.2 measures (CO/SH and per-attribute AE/AW/ME/MW).",
    )
    p_eval.add_argument("--model", "-m", type=Path, required=True)
    _add_dataset_arguments(p_eval, with_data=False)

    # ----------------------------------------------------------- paper #
    p_paper = sub.add_parser(
        "paper",
        help="regenerate paper tables/figures (also: repro tableN aliases)",
        description="Regenerate tables/figures from the paper. Output is "
        "printed and written under results/.",
    )
    p_paper.add_argument(
        "experiment",
        choices=[*EXPERIMENTS, "all", "list"],
        help="experiment id (tableN / figN-M), 'all', or 'list'",
    )
    p_paper.add_argument(
        "--seeds", type=positive_int, default=None,
        help="random restarts per configuration (default: env REPRO_BENCH_SEEDS or 3)",
    )
    p_paper.add_argument("--adult-n", type=positive_int, default=None,
                         help="Adult rows before parity undersampling")
    p_paper.add_argument("--full", action="store_true",
                         help="paper-scale settings (100 seeds, 32561 Adult rows)")
    p_paper.add_argument("--engine", choices=list(ENGINES), default=None)
    p_paper.add_argument("--chunk-size", type=positive_int, default=None)

    # ----------------------------------------------------------- bench #
    p_bench = sub.add_parser(
        "bench",
        help="run the perf suites and emit machine-readable BENCH_*.json; "
        "'bench compare' diffs two records",
        description="Run the engine/assignment/serving/fleet/backend "
        "benchmark suites across worker counts, write schema-validated "
        "BENCH_engine.json / BENCH_assign.json / BENCH_serve.json / "
        "BENCH_fleet.json / BENCH_backend.json under results/, and print "
        "the rendered tables. 'repro bench compare BASELINE CURRENT' diffs "
        "two bench files and exits nonzero on rows/s regressions.",
    )
    p_bench.add_argument(
        "suite", nargs="?",
        choices=["engine", "assign", "serve", "fleet", "backend", "all", "compare"],
        default="all",
        help="suite to run (default all), or 'compare' to diff two records",
    )
    p_bench.add_argument(
        "paths", nargs="*", type=Path, metavar="BENCH_JSON",
        help="for 'compare': the baseline and current BENCH_*.json files",
    )
    p_bench.add_argument(
        "--smoke", action="store_true",
        help="small sizes for CI (seconds, not minutes)",
    )
    p_bench.add_argument(
        "--jobs", type=jobs_value, default=4,
        help="top of the worker-count ladder 1,2,4,... (default 4)",
    )
    p_bench.add_argument(
        "--repeats", type=positive_int, default=None,
        help="timing repeats, best-of (default: 1 engine / 3 assign+serve)",
    )
    p_bench.add_argument(
        "--out", "-o", type=Path, default=None,
        help="output directory (default results/, or REPRO_RESULTS_DIR)",
    )
    p_bench.add_argument(
        "--threshold", type=float, default=None,
        help="for 'compare': minimum current/baseline rows/s ratio "
        "before a record counts as regressed (default 0.9)",
    )
    p_bench.add_argument(
        "--from-actions", action="store_true",
        help="for 'compare' with ONE file: fetch the baseline from the "
        "previous successful run's bench artifact via the GitHub actions "
        "API (needs GITHUB_REPOSITORY + GITHUB_TOKEN); falls back to a "
        "same-run self-comparison when no artifact exists yet",
    )
    p_bench.add_argument(
        "--artifact-name", default="bench-results", metavar="NAME",
        help="for 'compare --from-actions': artifact name to fetch "
        "(default bench-results)",
    )

    # ----------------------------------------------------------- chaos #
    p_chaos = sub.add_parser(
        "chaos",
        help="run seeded fault-injection soaks against a live fleet",
        description="Spin up a throwaway worker fleet behind the proxy "
        "and soak it with a seed-derived fault schedule (a SIGSTOP'd "
        "frozen worker, a SIGKILL'd crashed worker, injected worker-side "
        "delays), measuring availability and p50/p99 latency while "
        "asserting every successful response is bit-identical to "
        "in-process predict. Writes schema-validated "
        "results/BENCH_chaos.json with the breaker-on soak next to the "
        "identical breaker-off soak; exits nonzero when the breaker-on "
        "soak misses the availability gate or any answer was wrong.",
    )
    p_chaos.add_argument(
        "--seed", type=int, default=0,
        help="fault-schedule seed (same seed, same schedule; default 0)",
    )
    p_chaos.add_argument(
        "--smoke", action="store_true",
        help="single short breaker-on soak for CI (seconds, not minutes)",
    )
    p_chaos.add_argument(
        "--requests", type=positive_int, default=None,
        help="requests per soak (default 80 smoke / 250 full)",
    )
    p_chaos.add_argument(
        "--workers", type=positive_int, default=2,
        help="fleet worker processes (default 2)",
    )
    p_chaos.add_argument(
        "--out", "-o", type=Path, default=None,
        help="output directory (default results/, or REPRO_RESULTS_DIR)",
    )
    p_chaos.add_argument(
        "--min-availability", type=float, default=None, metavar="FRACTION",
        help="availability gate for the breaker-on soak "
        "(default 0.99 full / 0.90 smoke)",
    )
    p_chaos.add_argument(
        "--no-remote-fit", action="store_true",
        help="skip the remote-fit soak (a POST /score fit through the "
        "fleet with a mid-fit worker SIGKILL; must end bit-identical to "
        "local or as a typed BackendError)",
    )

    # ----------------------------------------------------------- serve #
    p_serve = sub.add_parser(
        "serve",
        help="run the long-lived HTTP assignment server",
        description="Serve batched S-blind assignment over HTTP from a "
        "model registry (hot-reloading its LATEST pointer) or from one "
        "artifact directory. Endpoints: POST /assign (JSON or npy "
        "bytes), POST /score (remote-training shard scoring), "
        "GET /healthz, GET /model, POST /reload.",
    )
    p_serve.add_argument(
        "--registry", type=Path, default=None,
        help="registry root; the server follows its LATEST pointer "
        "(publishes/rollbacks hot-reload without a restart)",
    )
    p_serve.add_argument(
        "--model", "-m", type=Path, default=None,
        help="serve a single artifact directory instead of a registry",
    )
    p_serve.add_argument("--host", default="127.0.0.1", help="bind address")
    p_serve.add_argument(
        "--port", type=int, default=8000,
        help="bind port (0 picks an ephemeral port; default 8000)",
    )
    p_serve.add_argument(
        "--uds", type=Path, default=None, metavar="SOCKET",
        help="bind a Unix domain socket at this path instead of TCP "
        "(co-located clients skip the TCP stack entirely)",
    )
    p_serve.add_argument(
        "--jobs", type=jobs_value, default=None,
        help="worker threads per assignment call (labels identical for "
        "every value)",
    )
    p_serve.add_argument(
        "--chunk-size", type=positive_int, default=None,
        help="default rows scored per block (default 8192)",
    )
    p_serve.add_argument(
        "--no-follow", action="store_true",
        help="pin the server: never auto-reload on a LATEST move; only an "
        "explicit POST /reload changes the serving version (fleet-worker mode)",
    )
    p_serve.add_argument(
        "--pin", default=None, metavar="VERSION",
        help="start serving this registry version instead of LATEST "
        "(implies --no-follow)",
    )
    p_serve.add_argument(
        "--announce", type=Path, default=None, metavar="FILE",
        help="after binding, atomically write {url, host, port, uds, pid, "
        "version} as JSON to FILE (how a fleet supervisor discovers its "
        "workers)",
    )
    p_serve.add_argument(
        "--verbose", action="store_true", help="log every request",
    )

    # ----------------------------------------------------------- fleet #
    p_fleet = sub.add_parser(
        "fleet",
        help="run a multi-process serving fleet with canary rollouts",
        description="Supervise N pinned assignment-server processes behind "
        "one round-robin proxy port. Workers never follow LATEST on their "
        "own: 'fleet rollout' moves a canary first, replays a pinned probe "
        "batch through it, verifies the labels bit-for-bit, then staggers "
        "the rest (automatic LATEST rollback on mismatch).",
    )
    fleet_sub = p_fleet.add_subparsers(
        dest="fleet_command", required=True, metavar="action"
    )
    p_up = fleet_sub.add_parser(
        "up", help="start the workers + proxy in the foreground"
    )
    p_up.add_argument(
        "--registry", type=Path, required=True, help="registry root directory"
    )
    p_up.add_argument(
        "--workers", type=positive_int, default=2,
        help="worker processes (default 2)",
    )
    p_up.add_argument("--host", default="127.0.0.1", help="bind address")
    p_up.add_argument(
        "--port", type=int, default=8100,
        help="proxy port fronting the fleet (0 picks an ephemeral port; "
        "default 8100); workers get ephemeral ports of their own",
    )
    p_up.add_argument(
        "--jobs", type=jobs_value, default=None,
        help="worker threads per assignment call inside each process",
    )
    p_up.add_argument(
        "--chunk-size", type=positive_int, default=None,
        help="default rows scored per block per worker",
    )
    p_up.add_argument(
        "--state-dir", type=Path, default=None,
        help="fleet state/log directory (default <registry>/.fleet)",
    )
    p_up.add_argument(
        "--transport", choices=["auto", "tcp", "uds"], default="auto",
        help="worker transport: Unix domain sockets under the state dir, "
        "TCP loopback, or auto (UDS when the platform and path length "
        "allow it; default auto)",
    )
    p_up.add_argument(
        "--stagger", type=float, default=0.0, metavar="SECONDS",
        help="pause between post-canary worker reloads (default 0)",
    )
    p_up.add_argument(
        "--probe-rows", type=positive_int, default=64,
        help="rows in the pinned canary probe batch (default 64)",
    )
    for name, help_text in (
        ("status", "fleet-wide health: one row per worker"),
        ("rollout", "canary-roll the fleet to a registry version"),
        ("targets", "print the worker URLs to train against "
         "(repro fit --backend remote --targets ...)"),
    ):
        p_action = fleet_sub.add_parser(name, help=help_text)
        p_action.add_argument(
            "--url", default=None,
            help="proxy base URL (default: read from the fleet state file)",
        )
        p_action.add_argument(
            "--registry", type=Path, default=None,
            help="registry root (locates <registry>/.fleet/fleet.json)",
        )
        p_action.add_argument(
            "--state-dir", type=Path, default=None,
            help="fleet state directory override",
        )
        if name == "rollout":
            p_action.add_argument(
                "--version", default=None,
                help="candidate version (default: the current LATEST target)",
            )
            p_action.add_argument(
                "--require-identical", action="store_true",
                help="also require the canary's labels to equal the current "
                "fleet's labels on the probe (bit-identity republish mode)",
            )

    # ----------------------------------------------------------- trace #
    p_trace = sub.add_parser(
        "trace",
        help="render request traces from a span sink as trees",
        description="Read the JSONL span sink written by traced serving "
        "requests (REPRO_TRACE_SINK) and render each X-Trace-Id's spans "
        "as a parent/child tree: proxy ingress, per-worker lanes "
        "(including dead-lane replays), and server-side assignment.",
    )
    p_trace.add_argument(
        "sink", type=Path,
        help="span sink file (the path REPRO_TRACE_SINK pointed at)",
    )
    p_trace.add_argument(
        "--trace-id", default=None, metavar="ID",
        help="render only this trace (default: every trace in the sink)",
    )
    p_trace.add_argument(
        "--list", action="store_true", dest="list_traces",
        help="one summary line per trace instead of full trees",
    )

    # -------------------------------------------------------- registry #
    p_registry = sub.add_parser(
        "registry",
        help="publish, list, roll back and prune serving artifacts",
        description="Manage a directory-of-artifacts model registry: "
        "versioned ClusterModel directories plus an atomically-updated "
        "LATEST pointer that live servers hot-reload.",
    )
    reg_sub = p_registry.add_subparsers(
        dest="registry_command", required=True, metavar="action"
    )
    for name, help_text in (
        ("publish", "copy an artifact into the registry as a new version"),
        ("list", "list published versions (the LATEST target is starred)"),
        ("rollback", "repoint LATEST at an earlier version"),
        ("prune", "delete old versions beyond a retention window"),
    ):
        p_action = reg_sub.add_parser(name, help=help_text)
        p_action.add_argument(
            "--registry", type=Path, required=True, help="registry root directory"
        )
        if name == "publish":
            p_action.add_argument(
                "--model", "-m", type=Path, required=True,
                help="artifact directory written by 'repro fit'",
            )
            p_action.add_argument(
                "--label", default=None,
                help="human suffix for the version directory name",
            )
            p_action.add_argument(
                "--no-latest", action="store_true",
                help="stage the version without repointing LATEST",
            )
        elif name == "rollback":
            p_action.add_argument(
                "--steps", type=positive_int, default=1,
                help="versions to walk back from LATEST (default 1)",
            )
            p_action.add_argument(
                "--to", default=None, help="explicit version id to roll to"
            )
        elif name == "prune":
            p_action.add_argument(
                "--retention", type=positive_int, required=True,
                help="newest versions to keep (the LATEST target is always kept)",
            )

    return parser


# --------------------------------------------------------------------- #
# Data loading                                                            #
# --------------------------------------------------------------------- #


def _build_dataset(name: str, adult_n: int | None, seed: int) -> Any:
    from .experiments.paper import build_adult, build_kinematics

    if name == "adult":
        return build_adult(adult_n or bench_scale()[1])
    if name == "kinematics":
        return build_kinematics()
    from .data.synthetic import make_fair_problem

    return make_fair_problem(600, seed=seed)


def load_points_file(path: Path) -> tuple[np.ndarray, dict[str, np.ndarray] | None]:
    """Read a feature-matrix file; returns ``(points, sensitive|None)``.

    ``.npz`` files must hold a ``points`` array and may carry sensitive
    attributes as ``sensitive_<name>`` arrays; ``.npy`` and ``.csv``
    hold the matrix alone.
    """
    suffix = path.suffix.lower()
    if suffix == ".npz":
        with np.load(path) as arrays:
            if "points" not in arrays:
                raise ValueError(f"{path}: .npz input needs a 'points' array")
            points = np.asarray(arrays["points"], dtype=np.float64)
            sensitive = {
                key[len(SENSITIVE_PREFIX):]: np.asarray(arrays[key])
                for key in arrays.files
                if key.startswith(SENSITIVE_PREFIX)
            }
        return points, sensitive or None
    if suffix == ".npy":
        return np.asarray(np.load(path), dtype=np.float64), None
    if suffix == ".csv":
        # ndmin=2 keeps a single-column file as (n, 1) instead of (1, n).
        return np.loadtxt(path, delimiter=",", dtype=np.float64, ndmin=2), None
    raise ValueError(f"{path}: unsupported data format {suffix!r} (.npy/.npz/.csv)")


def _require_one_source(
    args: argparse.Namespace, parser: argparse.ArgumentParser
) -> None:
    if (args.dataset is None) == (args.data is None):
        parser.error("exactly one of --dataset or --data is required")


def _resolve_fit_inputs(
    args: argparse.Namespace, parser: argparse.ArgumentParser, config: RunConfig
) -> tuple[Any, Any]:
    """(points-or-dataset, sensitive) for the ``fit`` command."""
    _require_one_source(args, parser)
    if args.dataset is not None:
        return _build_dataset(args.dataset, args.adult_n, config.seed), None
    points, sensitive = load_points_file(args.data)
    return points, sensitive


# --------------------------------------------------------------------- #
# Subcommand implementations                                              #
# --------------------------------------------------------------------- #


def _cmd_fit(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    base = RunConfig.from_json(args.config.read_text()) if args.config else RunConfig()
    sensitive_names = (
        tuple(s.strip() for s in args.sensitive.split(",") if s.strip())
        if args.sensitive
        else None
    )
    config = base.with_overrides(
        method=args.method,
        k=args.k,
        lambda_=args.lambda_,
        engine=args.engine,
        chunk_size=args.chunk_size,
        n_jobs=args.jobs,
        backend=args.backend,
        workers=args.workers,
        targets=tuple(args.targets) if args.targets else None,
        max_iter=args.max_iter,
        seed=args.seed,
        scale_features=False if args.no_scale else None,
        sensitive=sensitive_names,
    )
    data, sensitive = _resolve_fit_inputs(args, parser, config)
    if args.metrics_out is not None:
        # The engine publishes per-sweep diagnostics into the process
        # registry; reset it first so the profile covers this fit only.
        from .obs import get_registry, reset_registry

        reset_registry()
    model = api_fit(config, data, sensitive=sensitive)
    path = model.save(args.out)
    print(model.summary())
    print(f"saved: {path}")
    if args.metrics_out is not None:
        import json

        profile = {
            "schema": "repro.fit-profile/v1",
            "metrics": get_registry().snapshot(),
            "diagnostics": model.diagnostics,
        }
        args.metrics_out.parent.mkdir(parents=True, exist_ok=True)
        args.metrics_out.write_text(
            json.dumps(profile, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        print(f"metrics profile written to {args.metrics_out}")
    return 0


def _load_model(path: Path, parser: argparse.ArgumentParser) -> ClusterModel:
    try:
        return ClusterModel.load(path)
    except (FileNotFoundError, ValueError) as exc:
        parser.error(str(exc))
        raise AssertionError("unreachable")  # parser.error exits


def _cmd_predict(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    model = _load_model(args.model, parser)
    _require_one_source(args, parser)
    if args.dataset is not None:
        dataset = _build_dataset(args.dataset, args.adult_n, model.config.seed)
        points = dataset.feature_matrix(scale=model.config.scale_features)
    else:
        points, _ = load_points_file(args.data)
    start = time.perf_counter()
    labels = model.assign(points, chunk_size=args.chunk_size, n_jobs=args.jobs)
    elapsed = time.perf_counter() - start
    counts = np.bincount(labels, minlength=model.k)
    rate = labels.size / elapsed if elapsed > 0 else float("inf")
    print(f"assigned {labels.size} points to k={model.k} clusters "
          f"in {elapsed:.3f}s ({rate:,.0f} rows/s)")
    print("cluster sizes:", counts.tolist())
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        if args.out.suffix.lower() == ".npy":
            np.save(args.out, labels)
        else:
            args.out.write_text("\n".join(str(x) for x in labels.tolist()) + "\n")
        print(f"labels written to {args.out}")
    return 0


def _cmd_evaluate(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    from .api import evaluate_model
    from .experiments.tables import format_table

    model = _load_model(args.model, parser)
    if args.dataset is None:
        parser.error("--dataset is required for evaluate")
    dataset = _build_dataset(args.dataset, args.adult_n, model.config.seed)
    ev = evaluate_model(model, dataset)
    quality = ev.quality_dict()
    rows = [[key, f"{quality[key]:.4f}"] for key in ("CO", "SH")]
    print(format_table(["Measure", "Value"], rows,
                       title=f"{model.config.method} (k={model.k}) on {args.dataset}"))
    fairness_rows = [
        ["mean"] + [f"{ev.fairness.mean[m]:.4f}" for m in ("AE", "AW", "ME", "MW")]
    ]
    for attr in ev.fairness.attributes:
        fairness_rows.append(
            [attr.name] + [f"{attr[m]:.4f}" for m in ("AE", "AW", "ME", "MW")]
        )
    print()
    print(format_table(["Attribute", "AE", "AW", "ME", "MW"], fairness_rows,
                       title="Fairness (lower is better)"))
    return 0


def _cmd_paper(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    if args.experiment == "list":
        for name, (_, description) in EXPERIMENTS.items():
            print(f"{name:10s} {description}")
        return 0
    settings = BenchSettings.resolve(
        seeds=args.seeds,
        adult_n=args.adult_n,
        full=args.full,
        engine=args.engine,
        chunk_size=args.chunk_size,
    )
    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        fn, description = EXPERIMENTS[name]
        print(f"== {name}: {description} ==")
        start = time.time()
        print(fn(settings))
        print(f"[{name} done in {time.time() - start:.1f}s]\n")
    return 0


def _cmd_bench(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    import json

    from .core.parallel import resolve_n_jobs
    from .perf.harness import render_bench, run_bench, validate_bench

    if args.suite == "compare":
        return _bench_compare(args, parser)
    if args.paths:
        parser.error("positional BENCH_JSON files are only for 'bench compare'")
    if args.threshold is not None:
        parser.error("--threshold is only for 'bench compare'")
    start = time.time()
    written = run_bench(
        args.suite,
        smoke=args.smoke,
        max_jobs=resolve_n_jobs(args.jobs),
        out_dir=args.out,
        repeats=args.repeats,
    )
    for suite, path in written.items():
        payload = json.loads(path.read_text(encoding="utf-8"))
        validate_bench(payload)  # what CI runs against the emitted file
        print(render_bench(payload))
        print(f"[{suite}] written: {path}\n")
    print(f"[bench done in {time.time() - start:.1f}s]")
    return 0


def _bench_compare(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    import json

    from .perf.compare import (
        DEFAULT_THRESHOLD,
        backend_gate,
        compare_bench_files,
        fleet_gate,
        obs_gate,
        render_backend_gate,
        render_comparison,
        render_fleet_gate,
        render_obs_gate,
    )

    if args.from_actions:
        if len(args.paths) != 1:
            parser.error("bench compare --from-actions needs exactly one "
                         "file: CURRENT")
        from .perf.actions import fetch_baseline

        current = args.paths[0]
        baseline = fetch_baseline(
            args.artifact_name, current.name, current.parent / "baseline"
        )
        if baseline is None:
            # First run / no token / expired artifact: gate against the
            # same-run file so the fleet gate below still runs.
            print("bench compare: no cross-run baseline; "
                  "comparing the current file against itself")
            baseline = current
    else:
        if len(args.paths) != 2:
            parser.error("bench compare needs exactly two files: "
                         "BASELINE CURRENT (or --from-actions CURRENT)")
        baseline, current = args.paths
    try:
        comparison = compare_bench_files(
            baseline,
            current,
            threshold=args.threshold if args.threshold is not None else DEFAULT_THRESHOLD,
        )
    except (OSError, ValueError) as exc:
        parser.error(str(exc))
        raise AssertionError("unreachable")
    print(render_comparison(comparison))
    ok = comparison.ok
    current_payload = json.loads(Path(current).read_text(encoding="utf-8"))
    if current_payload.get("suite") == "fleet":
        # The fleet suite carries its own scaling acceptance bar: worker
        # processes must multiply throughput, monotonically.
        report = fleet_gate(current_payload)
        print(render_fleet_gate(report))
        ok = ok and report.ok
    if current_payload.get("suite") == "backend":
        # Same idea for training: the multiprocess backend must beat the
        # single-process fit at gate-worthy n (hardware-aware, like the
        # fleet gate: impossible bars become notes, not failures).
        report = backend_gate(current_payload)
        print(render_backend_gate(report))
        ok = ok and report.ok
    if current_payload.get("suite") == "serve":
        # The serve suite measures an uninstrumented twin alongside the
        # default server: telemetry on the hot path must stay near-free.
        report = obs_gate(current_payload)
        print(render_obs_gate(report))
        ok = ok and report.ok
    return 0 if ok else 1


def _cmd_serve(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    from .serving import AssignmentServer, RegistryError, serve_forever

    if (args.registry is None) == (args.model is None):
        parser.error("exactly one of --registry or --model is required")
    try:
        server = AssignmentServer(
            registry=args.registry,
            model_path=args.model,
            host=args.host,
            port=args.port,
            uds=args.uds,
            n_jobs=args.jobs,
            chunk_size=args.chunk_size,
            follow=not args.no_follow,
            pin_version=args.pin,
            quiet=not args.verbose,
        )
    except (RegistryError, FileNotFoundError, ValueError, OSError) as exc:
        parser.error(str(exc))
        raise AssertionError("unreachable")
    snap = server.snapshot()
    if args.announce is not None:
        _announce(args.announce, server, snap.version)
    print(f"serving {snap.version} (method={snap.model.config.method}, "
          f"k={snap.model.k}, d={snap.model.n_features}) on {server.url}")
    print("endpoints: POST /assign  POST /score  GET /healthz  "
          "GET /model  POST /reload")
    serve_forever(server)
    return 0


def _announce(path: Path, server: Any, version: str) -> None:
    """Atomically write the bound-address announce file for supervisors."""
    import json
    import os

    from .serving.registry import atomic_write_text

    address = server.server_address
    uds = address if isinstance(address, (str, bytes)) else None
    if isinstance(uds, bytes):
        uds = uds.decode("utf-8", "surrogateescape")
    payload = {
        "url": server.url,
        "host": None if uds else address[0],
        "port": server.port,
        "uds": uds,
        "pid": os.getpid(),
        "version": version,
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    atomic_write_text(path, json.dumps(payload) + "\n")


def _cmd_fleet(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    if args.fleet_command == "up":
        return _fleet_up(args, parser)
    if args.fleet_command == "status":
        return _fleet_status(args, parser)
    if args.fleet_command == "targets":
        return _fleet_targets(args, parser)
    return _fleet_rollout(args, parser)


def _fleet_up(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    from .serving import FleetError, FleetProxy, FleetSupervisor, RegistryError

    supervisor = FleetSupervisor(
        args.registry,
        workers=args.workers,
        host=args.host,
        n_jobs=args.jobs,
        chunk_size=args.chunk_size,
        state_dir=args.state_dir,
        probe_rows=args.probe_rows,
        stagger_s=args.stagger,
        transport=args.transport,
    )
    try:
        supervisor.start()
    except (RegistryError, FleetError, ValueError, OSError) as exc:
        parser.error(str(exc))
        raise AssertionError("unreachable")
    try:
        proxy = FleetProxy(supervisor, port=args.port)
    except OSError as exc:
        supervisor.stop()
        parser.error(str(exc))
        raise AssertionError("unreachable")
    state = supervisor.write_state(proxy.url)
    print(
        f"fleet up: {supervisor.n_workers} worker(s) serving "
        f"{supervisor.serving_version} behind {proxy.url}"
    )
    for index, url in supervisor.target_urls():
        print(f"  worker {index}: {url}")
    print(f"state file: {state}")
    print("proxy endpoints: POST /assign  GET /healthz  GET /model  "
          "GET /admin/status  POST /admin/rollout")

    # SIGTERM (kill, systemd stop, CI teardown) must tear the worker
    # processes down with us, exactly like Ctrl-C does.
    import signal

    def _terminate(signum: int, frame: Any) -> None:
        raise KeyboardInterrupt

    previous_handler = signal.signal(signal.SIGTERM, _terminate)
    try:
        proxy.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        signal.signal(signal.SIGTERM, previous_handler)
        proxy.server_close()
        supervisor.stop()
    return 0


def _cmd_chaos(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    from .faults.chaos import render_chaos, run_chaos_suite

    try:
        outcome = run_chaos_suite(
            seed=args.seed,
            smoke=args.smoke,
            requests=args.requests,
            workers=args.workers,
            out_dir=args.out,
            min_availability=args.min_availability,
            remote_fit=not args.no_remote_fit,
        )
    except (OSError, ValueError) as exc:
        parser.error(str(exc))
        raise AssertionError("unreachable")
    print(f"wrote {outcome['path']}")
    print(render_chaos(outcome["path"]))
    if not outcome["ok"]:
        for reason in outcome["reasons"]:
            print(f"chaos gate FAILED: {reason}", file=sys.stderr)
        return 1
    print("chaos gate passed: availability within budget, zero wrong answers")
    return 0


def _fleet_targets(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    """Print a live fleet's worker URLs, one per line.

    The output is exactly what ``repro fit --backend remote --targets``
    (or ``RunConfig(targets=...)``) takes: the per-worker server URLs
    recorded in the fleet state file, each exposing ``POST /score``.
    The proxy URL is deliberately absent — training shards go straight
    to workers; the proxy only fronts serving traffic.
    """
    import json

    state_path = _fleet_state_path(args)
    if state_path is None:
        parser.error(
            "one of --registry or --state-dir is required "
            "(worker URLs live in the fleet state file)"
        )
        raise AssertionError("unreachable")
    if not state_path.is_file():
        parser.error(f"no fleet state file at {state_path} (is the fleet up?)")
    state = json.loads(state_path.read_text(encoding="utf-8"))
    urls = [w.get("url") for w in state.get("workers", []) if w.get("url")]
    if not urls:
        parser.error(f"{state_path} records no worker URLs (is the fleet up?)")
    for url in urls:
        print(url)
    return 0


def _fleet_state_path(args: argparse.Namespace) -> Path | None:
    """The fleet state file implied by --state-dir/--registry, if any."""
    if getattr(args, "state_dir", None) is not None:
        return args.state_dir / "fleet.json"
    if getattr(args, "registry", None) is not None:
        return args.registry / ".fleet" / "fleet.json"
    return None


def _fleet_url(args: argparse.Namespace, parser: argparse.ArgumentParser) -> str:
    """Resolve the proxy URL from --url or the fleet state file."""
    import json

    if args.url:
        return args.url
    state_path = _fleet_state_path(args)
    if state_path is None:
        parser.error("one of --url, --registry or --state-dir is required")
        raise AssertionError("unreachable")
    if not state_path.is_file():
        parser.error(f"no fleet state file at {state_path} (is the fleet up?)")
    url = json.loads(state_path.read_text(encoding="utf-8")).get("proxy_url")
    if not url:
        parser.error(f"{state_path} records no proxy URL (is the fleet up?)")
    return url


def _pid_alive(pid: Any) -> bool:
    """True when *pid* names a live process we can see (signal-0 probe)."""
    import os

    try:
        os.kill(int(pid), 0)
    except (ProcessLookupError, TypeError, ValueError, OverflowError):
        return False
    except PermissionError:  # pragma: no cover - alive but not ours
        return True
    return True


def _fleet_stale_report(
    args: argparse.Namespace, url: str, exc: Exception
) -> str | None:
    """Diagnose an unreachable fleet via the PIDs its state file recorded.

    Returns a human-readable staleness report when the state file's
    supervisor (and workers) are dead — the usual aftermath of a
    SIGKILLed ``repro fleet up`` that never got to clean up — or
    ``None`` when there is no state file to consult or the recorded
    processes still look alive (a genuine connection problem).
    """
    import json

    state_path = _fleet_state_path(args)
    if state_path is None or not state_path.is_file():
        return None
    try:
        state = json.loads(state_path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    supervisor_pid = state.get("pid")
    worker_pids = [w.get("pid") for w in state.get("workers", [])]
    supervisor_alive = supervisor_pid is not None and _pid_alive(supervisor_pid)
    live_workers = [p for p in worker_pids if p is not None and _pid_alive(p)]
    if supervisor_alive or live_workers:
        return None
    dead = [p for p in [supervisor_pid, *worker_pids] if p is not None]
    return (
        f"fleet state at {state_path} is STALE: {url} is unreachable ({exc}) "
        f"and none of its recorded processes are alive "
        f"(dead pids: {', '.join(str(p) for p in dead) or 'none recorded'}).\n"
        f"The fleet was likely killed without cleanup; start a new one with "
        f"'repro fleet up' (which rewrites the state file) or delete "
        f"{state_path}."
    )


def _fleet_status(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    from .experiments.tables import format_table
    from .serving import ServingClient, ServingClientError

    url = _fleet_url(args, parser)
    with ServingClient(url=url) as client:
        try:
            data = client.request_json("GET", "/admin/status")
        except ServingClientError as exc:
            stale = _fleet_stale_report(args, url, exc)
            if stale is not None:
                print(stale, file=sys.stderr)
                return 1
            parser.error(f"{url}: {exc}")
            raise AssertionError("unreachable")
        telemetry = _fleet_telemetry(client)
    rows = [
        [
            str(w["index"]),
            str(w["pid"] or "-"),
            str(w.get("uds") or w["port"]),
            "up" if w["alive"] else "DOWN",
            "ok" if w["healthy"] else "UNHEALTHY",
            w["version"] or "-",
            str(w["restarts"]),
            *_telemetry_cells(telemetry.get(str(w["index"]))),
        ]
        for w in data["workers"]
    ]
    print(format_table(
        ["worker", "pid", "address", "proc", "health", "version", "restarts",
         "reqs", "errs", "p50ms", "p99ms"],
        rows,
        title=f"Fleet at {url}: serving {data['version']} "
        f"(registry {data['registry']})",
    ))
    healthy = all(w["healthy"] for w in data["workers"])
    return 0 if healthy else 1


def _fleet_telemetry(client: Any) -> dict[str, dict[str, float]]:
    """Per-worker request/error/latency stats from ``/admin/metrics``.

    Returns ``{worker_label: {"requests", "errors", "p50", "p99"}}``
    (latencies in seconds; absent keys mean no samples). A fleet built
    before this endpoint existed — or mid-outage — yields ``{}`` and
    the status table simply shows dashes.
    """
    from .obs import parse_text, quantile_from_buckets
    from .serving import ServingClientError

    try:
        status, _, payload = client.request_raw("GET", "/admin/metrics", retry=False)
    except ServingClientError:
        return {}
    if status != 200:
        return {}
    try:
        families = parse_text(payload.decode("utf-8"))
    except (UnicodeDecodeError, ValueError):
        return {}
    stats: dict[str, dict[str, float]] = {}
    buckets: dict[str, dict[float, float]] = {}
    for family in families:
        if family.name == "repro_http_requests_total":
            for sample in family.samples:
                worker = sample.labels.get("worker")
                if worker is None:
                    continue
                per = stats.setdefault(worker, {})
                per["requests"] = per.get("requests", 0.0) + sample.value
                if sample.labels.get("code", "").startswith(("4", "5")):
                    per["errors"] = per.get("errors", 0.0) + sample.value
        elif family.name == "repro_assign_latency_seconds":
            for sample in family.samples:
                worker = sample.labels.get("worker")
                if worker is None or not sample.name.endswith("_bucket"):
                    continue
                le = sample.labels.get("le")
                if le is None:
                    continue
                bound = float("inf") if le == "+Inf" else float(le)
                per_bounds = buckets.setdefault(worker, {})
                # Cumulative counts sum across modes bound-by-bound.
                per_bounds[bound] = per_bounds.get(bound, 0.0) + sample.value
    for worker, per_bounds in buckets.items():
        per = stats.setdefault(worker, {})
        for q, key in ((0.5, "p50"), (0.99, "p99")):
            value = quantile_from_buckets(per_bounds.items(), q)
            if value is not None:
                per[key] = value
    return stats


def _telemetry_cells(per: dict[str, float] | None) -> list[str]:
    """Render one worker's telemetry as table cells (dashes when absent)."""
    if not per:
        return ["-", "-", "-", "-"]
    return [
        str(int(per.get("requests", 0.0))),
        str(int(per.get("errors", 0.0))),
        f"{per['p50'] * 1000:.1f}" if "p50" in per else "-",
        f"{per['p99'] * 1000:.1f}" if "p99" in per else "-",
    ]


def _fleet_rollout(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    import json

    from .serving import ServingClient, ServingUnavailableError

    url = _fleet_url(args, parser)
    body = json.dumps(
        {"version": args.version, "require_identical": args.require_identical}
    ).encode("utf-8")
    # Long timeout, no transparent retry: a staggered rollout can run for
    # minutes, and re-issuing the POST after a socket timeout would start
    # a second rollout (whose no-op "already serves" answer could mask a
    # rejection of the first).
    with ServingClient(url=url, timeout=3600.0) as client:
        try:
            status, _, payload = client.request_raw(
                "POST", "/admin/rollout", body, retry=False
            )
        except ServingUnavailableError as exc:
            parser.error(str(exc))
            raise AssertionError("unreachable")
    report = json.loads(payload.decode("utf-8"))
    if "error" in report:
        parser.error(report["error"])
    if report["ok"]:
        print(f"rollout ok: {report['previous']} -> {report['version']} "
              f"(canary worker {report['canary_worker']}, "
              f"{len(report['workers_reloaded'])} worker(s), "
              f"{report['probe_rows']}-row probe)")
        if report.get("reason"):
            print(report["reason"])
        return 0
    print(f"rollout REJECTED: {report['reason']}")
    print(f"workers reverted: {report['workers_reloaded'] or 'none'}; "
          f"LATEST rolled back: {report['rolled_back']}")
    return 1


def _cmd_trace(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    from .obs.trace import load_spans, render_trace_tree

    spans = load_spans(args.sink)
    if not spans:
        print(f"{args.sink}: no spans recorded", file=sys.stderr)
        return 1
    if args.list_traces:
        by_trace: dict[str, int] = {}
        for span in spans:
            by_trace[span.trace_id] = by_trace.get(span.trace_id, 0) + 1
        for trace_id in sorted(by_trace):
            print(f"{trace_id}  {by_trace[trace_id]} span(s)")
        return 0
    if args.trace_id is not None and not any(
        span.trace_id == args.trace_id for span in spans
    ):
        print(f"{args.sink}: no spans for trace {args.trace_id}", file=sys.stderr)
        return 1
    print(render_trace_tree(spans, trace_id=args.trace_id))
    return 0


def _cmd_registry(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    from .serving import ModelRegistry, RegistryError

    registry = ModelRegistry(args.registry)
    try:
        if args.registry_command == "publish":
            version = registry.publish(
                args.model, label=args.label, set_latest=not args.no_latest
            )
            latest = " (LATEST)" if not args.no_latest else ""
            print(f"published {version}{latest} -> {registry.root / version}")
        elif args.registry_command == "list":
            versions = registry.list_versions()
            if not versions:
                print(f"{registry.root}: no published versions")
                return 0
            try:
                latest = registry.latest_version()
            except RegistryError:
                latest = None
            for version in versions:
                marker = " *" if version == latest else ""
                print(f"{version}{marker}")
        elif args.registry_command == "rollback":
            target = registry.rollback(steps=args.steps, to=args.to)
            print(f"LATEST -> {target}")
        elif args.registry_command == "prune":
            deleted = registry.prune(retention=args.retention)
            for version in deleted:
                print(f"deleted {version}")
            print(f"kept {len(registry.list_versions())} version(s)")
    except (RegistryError, FileNotFoundError, ValueError) as exc:
        parser.error(str(exc))
        raise AssertionError("unreachable")
    return 0


_COMMANDS = {
    "fit": _cmd_fit,
    "predict": _cmd_predict,
    "evaluate": _cmd_evaluate,
    "paper": _cmd_paper,
    "bench": _cmd_bench,
    "chaos": _cmd_chaos,
    "serve": _cmd_serve,
    "fleet": _cmd_fleet,
    "registry": _cmd_registry,
    "trace": _cmd_trace,
}

#: Pre-subcommand spellings still accepted at the front of argv.
_LEGACY_EXPERIMENT_TOKENS = frozenset([*EXPERIMENTS, "all", "list"])


def _rewrite_legacy_argv(argv: list[str]) -> list[str]:
    """Route pre-subcommand spellings to ``repro paper ...``.

    The old single-parser CLI allowed options before the experiment
    (``repro --seeds 5 table6``), so any invocation that is not already
    a subcommand but mentions an experiment token gets the ``paper``
    prefix.
    """
    if not argv or argv[0] in _COMMANDS:
        return argv
    legacy = next((tok for tok in argv if tok in _LEGACY_EXPERIMENT_TOKENS), None)
    if legacy is None:
        return argv
    if legacy != "list":
        print(
            f"note: 'repro {legacy}' is deprecated; use 'repro paper {legacy}'",
            file=sys.stderr,
        )
    return ["paper", *argv]


def main(argv: list[str] | None = None) -> int:
    argv = _rewrite_legacy_argv(list(sys.argv[1:] if argv is None else argv))
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args, parser)
    except BrokenPipeError:
        # Downstream pager closed the pipe (`repro trace ... | head`):
        # detach stdout so the interpreter's exit flush cannot raise
        # again, and exit the POSIX way (128 + SIGPIPE).
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 141


if __name__ == "__main__":
    sys.exit(main())
