"""Prometheus text exposition format 0.0.4: render, parse, aggregate.

The renderer turns :meth:`~repro.obs.metrics.MetricsRegistry.collect`
snapshots into the plain-text format every Prometheus-compatible
scraper understands (``# HELP`` / ``# TYPE`` preambles, one sample per
line, histogram ``_bucket``/``_sum``/``_count`` expansion, label value
escaping).

The parser exists because this repo *consumes* its own exposition in
three places — the supervisor-side ``/admin/metrics`` aggregation,
``repro fleet status``'s latency columns, and the conformance tests
that hold every emitted line to the grammar — and a round-trip through
one strict parser keeps all of them honest.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from .metrics import _METRIC_NAME

#: Content type a ``/metrics`` response must carry.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_SAMPLE_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*")
_LABEL_SCAN = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*")
_RESERVED_SUFFIXES = ("_bucket", "_sum", "_count")


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def format_value(value: float) -> str:
    """A sample value that survives the round-trip.

    Integral values print as integers (the common case for counters),
    infinities as ``+Inf``/``-Inf``, everything else via ``repr``.
    """
    value = float(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if value.is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _render_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    parts = ",".join(
        f'{name}="{_escape_label_value(str(labels[name]))}"'
        for name in sorted(labels)
    )
    return "{" + parts + "}"


def render_families(
    families: Iterable[dict[str, Any]],
    *,
    extra_labels: Mapping[str, str] | None = None,
) -> str:
    """Render family snapshots to exposition text.

    ``extra_labels`` are merged into every sample (the supervisor uses
    this to stamp ``worker="0"`` onto scraped worker series); a clash
    with an existing label name raises rather than silently dropping a
    dimension.
    """
    extra = dict(extra_labels or {})
    lines: list[str] = []
    for family in families:
        name = family["name"]
        kind = family["kind"]
        if family.get("help"):
            lines.append(f"# HELP {name} {_escape_help(family['help'])}")
        lines.append(f"# TYPE {name} {kind}")
        for series in family["series"]:
            labels = dict(series.get("labels") or {})
            for key, value in extra.items():
                if key in labels:
                    raise ValueError(
                        f"extra label {key!r} collides on metric {name!r}"
                    )
                labels[key] = value
            if kind == "histogram":
                for bound, count in series["buckets"]:
                    bucket_labels = dict(labels)
                    bucket_labels["le"] = format_value(float(bound))
                    lines.append(
                        f"{name}_bucket{_render_labels(bucket_labels)}"
                        f" {format_value(count)}"
                    )
                lines.append(
                    f"{name}_sum{_render_labels(labels)}"
                    f" {format_value(series['sum'])}"
                )
                lines.append(
                    f"{name}_count{_render_labels(labels)}"
                    f" {format_value(series['count'])}"
                )
            else:
                lines.append(
                    f"{name}{_render_labels(labels)}"
                    f" {format_value(series['value'])}"
                )
    return "\n".join(lines) + "\n" if lines else ""


def render_registry(
    registry: Any, *, extra_labels: Mapping[str, str] | None = None
) -> str:
    """Render a registry's full collection to exposition text."""
    return render_families(registry.collect(), extra_labels=extra_labels)


@dataclass
class ParsedSample:
    """One exposition line: full sample name, labels, value."""

    name: str
    labels: dict[str, str]
    value: float


@dataclass
class ParsedFamily:
    """One metric family recovered from exposition text."""

    name: str
    kind: str = "untyped"
    help: str = ""
    samples: list[ParsedSample] = field(default_factory=list)


def _unescape_label_value(value: str) -> str:
    out: list[str] = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            if nxt == "\\":
                out.append("\\")
            elif nxt == '"':
                out.append('"')
            elif nxt == "n":
                out.append("\n")
            else:
                raise ValueError(f"invalid escape \\{nxt} in label value")
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def _parse_value(text: str) -> float:
    text = text.strip()
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    return float(text)


def _parse_labels(text: str) -> dict[str, str]:
    labels: dict[str, str] = {}
    i = 0
    while i < len(text):
        match = _LABEL_SCAN.match(text, i)
        if not match:
            raise ValueError(f"invalid label name at ...{text[i:]!r}")
        name = match.group(0)
        i += len(name)
        if not text[i:].startswith('="'):
            raise ValueError('expected ="..." after label %r' % name)
        i += 2
        start = i
        while i < len(text):
            if text[i] == "\\":
                i += 2
                continue
            if text[i] == '"':
                break
            i += 1
        if i >= len(text):
            raise ValueError("unterminated label value")
        labels[name] = _unescape_label_value(text[start:i])
        i += 1
        if i < len(text) and text[i] == ",":
            i += 1
            while i < len(text) and text[i] == " ":
                i += 1
    return labels


def base_name(sample_name: str) -> str:
    """Strip histogram sample suffixes back to the family name."""
    for suffix in _RESERVED_SUFFIXES:
        if sample_name.endswith(suffix):
            return sample_name[: -len(suffix)]
    return sample_name


def parse_text(text: str) -> list[ParsedFamily]:
    """Parse exposition text, strictly.

    Raises :class:`ValueError` on any line that does not match the
    0.0.4 grammar — the conformance tests feed every byte the servers
    emit through here. Families are returned in first-seen order;
    histogram samples stay attached to their base family.
    """
    families: dict[str, ParsedFamily] = {}
    order: list[str] = []

    def family_for(name: str) -> ParsedFamily:
        fam = families.get(name)
        if fam is None:
            fam = families[name] = ParsedFamily(name=name)
            order.append(name)
        return fam

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.rstrip()
        if not line.strip():
            continue
        try:
            if line.startswith("# HELP "):
                rest = line[len("# HELP ") :]
                name, _, help_text = rest.partition(" ")
                if not _METRIC_NAME.match(name):
                    raise ValueError(f"invalid metric name {name!r}")
                family_for(name).help = help_text
                continue
            if line.startswith("# TYPE "):
                rest = line[len("# TYPE ") :]
                parts = rest.split(" ")
                if len(parts) != 2:
                    raise ValueError(f"malformed TYPE line {line!r}")
                name, kind = parts
                if not _METRIC_NAME.match(name):
                    raise ValueError(f"invalid metric name {name!r}")
                if kind not in (
                    "counter",
                    "gauge",
                    "histogram",
                    "summary",
                    "untyped",
                ):
                    raise ValueError(f"unknown metric type {kind!r}")
                family_for(name).kind = kind
                continue
            if line.startswith("#"):
                continue  # free-form comment
            match = _SAMPLE_NAME.match(line)
            if not match:
                raise ValueError(f"invalid sample name in {line!r}")
            sample_name = match.group(0)
            rest = line[len(sample_name) :]
            labels: dict[str, str] = {}
            if rest.startswith("{"):
                end = _find_label_end(rest)
                labels = _parse_labels(rest[1:end])
                rest = rest[end + 1 :]
            if not rest.startswith(" "):
                raise ValueError(f"expected space before value in {line!r}")
            fields = rest.split()
            if len(fields) not in (1, 2):  # value [timestamp]
                raise ValueError(f"trailing garbage in {line!r}")
            value = _parse_value(fields[0])
            fam = family_for(base_name(sample_name))
            fam.samples.append(ParsedSample(sample_name, labels, value))
        except ValueError as exc:
            raise ValueError(f"line {lineno}: {exc}") from exc
    return [families[name] for name in order]


def _find_label_end(rest: str) -> int:
    i = 1
    while i < len(rest):
        if rest[i] == "\\":
            i += 2
            continue
        if rest[i] == '"':
            i += 1
            while i < len(rest) and rest[i] != '"':
                if rest[i] == "\\":
                    i += 1
                i += 1
            if i >= len(rest):
                raise ValueError("unterminated label value")
        elif rest[i] == "}":
            return i
        i += 1
    raise ValueError("unterminated label set")


def merge_scrapes(
    scrapes: Iterable[tuple[Mapping[str, str], str]]
) -> str:
    """Aggregate several expositions into one, per-source labelled.

    Each ``(extra_labels, text)`` pair is parsed and its samples are
    re-emitted with the extra labels merged in; families with the same
    name across sources are unified under a single ``# TYPE`` block,
    which is what makes the output itself valid exposition text. The
    supervisor feeds this its own registry plus one scrape per live
    worker.
    """
    merged: dict[str, ParsedFamily] = {}
    order: list[str] = []
    for extra, text in scrapes:
        for family in parse_text(text):
            target = merged.get(family.name)
            if target is None:
                target = merged[family.name] = ParsedFamily(
                    name=family.name, kind=family.kind, help=family.help
                )
                order.append(family.name)
            elif target.kind == "untyped" and family.kind != "untyped":
                target.kind = family.kind
            if not target.help:
                target.help = family.help
            for sample in family.samples:
                labels = dict(sample.labels)
                for key, value in extra.items():
                    if key in labels:
                        raise ValueError(
                            f"label {key!r} collides on {sample.name!r}"
                        )
                    labels[key] = str(value)
                target.samples.append(
                    ParsedSample(sample.name, labels, sample.value)
                )
    lines: list[str] = []
    for name in order:
        family = merged[name]
        if family.help:
            lines.append(f"# HELP {name} {_escape_help(family.help)}")
        lines.append(f"# TYPE {name} {family.kind}")
        for sample in family.samples:
            lines.append(
                f"{sample.name}{_render_labels(sample.labels)}"
                f" {format_value(sample.value)}"
            )
    return "\n".join(lines) + "\n" if lines else ""
