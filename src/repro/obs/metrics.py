"""Process-local metrics registry: counters, gauges, latency histograms.

Zero-dependency telemetry core for the serving stack and the training
loop. Three instrument kinds, all thread-safe and cheap enough for the
assign hot path (one lock acquire plus a dict lookup per update):

* :class:`Counter` — monotone float totals (requests, rows, bytes).
* :class:`Gauge` — a settable point-in-time value (move rate, workers).
* :class:`Histogram` — fixed-bucket latency distribution; buckets are
  chosen at registration, observations are a ``bisect`` into them, and
  snapshots export *cumulative* counts per upper bound the way the
  Prometheus text format wants them.

Instruments are *families*: ``registry.counter(name, ...)`` registers
(or re-fetches — registration is idempotent) the family, and
``family.labels(path="/assign")`` returns the per-label-set child that
actually holds the value. Families with no label names act as their own
child, so ``registry.counter("x", "...").inc()`` works directly.

Two registry flavours exist on purpose:

* :func:`get_registry` — the process-wide registry. The training loop
  and CLI publish here; a ``repro serve`` worker process therefore has
  exactly one of these.
* per-instance registries — :class:`~repro.serving.server.AssignmentServer`
  and :class:`~repro.serving.proxy.FleetProxy` default to a *private*
  registry each, because tests (and the bench harness) run several
  servers plus a proxy inside one process and their series must not
  bleed together. Pass ``metrics=<registry>`` to share one explicitly,
  or ``metrics=False`` for the null registry (every update is a no-op —
  the uninstrumented baseline the overhead gate benches against).

Live state that already has an owner — breaker boards, fault
injectors — is exported through *collectors*: callables registered via
:meth:`MetricsRegistry.register_collector` that produce family
snapshots at scrape time. The gauge is a view over the same object the
``/admin/status`` JSON reads; nothing is double-tracked.
"""

from __future__ import annotations

import math
import re
import threading
from bisect import bisect_left
from typing import Any, Callable, Iterable

#: Default latency buckets, seconds. Spans sub-millisecond in-process
#: assigns up to multi-second scatter-gather requests under chaos.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

#: Breaker state -> gauge value, shared by the proxy collector and the
#: fleet-status renderer so dashboards and CLI agree on the encoding.
BREAKER_STATE_CODES: dict[str, int] = {"closed": 0, "half-open": 1, "open": 2}

_METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

_KINDS = frozenset({"counter", "gauge", "histogram"})


def _check_name(name: str) -> str:
    if not _METRIC_NAME.match(name):
        raise ValueError(f"invalid metric name {name!r}")
    return name


def _check_labelnames(labelnames: Iterable[str]) -> tuple[str, ...]:
    names = tuple(labelnames)
    for label in names:
        if not _LABEL_NAME.match(label) or label.startswith("__"):
            raise ValueError(f"invalid label name {label!r}")
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate label names in {names!r}")
    return names


class _Child:
    """One labelled series of a counter or gauge family."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        with self._lock:
            self._value += amount

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class _HistogramChild:
    """One labelled series of a histogram family."""

    __slots__ = ("_lock", "_bounds", "_counts", "_sum", "_count")

    def __init__(self, bounds: tuple[float, ...]) -> None:
        self._lock = threading.Lock()
        self._bounds = bounds
        # one slot per finite bound plus the +Inf overflow slot
        self._counts = [0] * (len(bounds) + 1)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        index = bisect_left(self._bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    def snapshot(self) -> dict[str, Any]:
        """Cumulative ``[upper_bound, count]`` pairs plus sum/count."""
        with self._lock:
            counts = list(self._counts)
            total = self._count
            acc_sum = self._sum
        buckets: list[list[float]] = []
        running = 0
        for bound, count in zip(self._bounds, counts):
            running += count
            buckets.append([bound, running])
        buckets.append([math.inf, total])
        return {"buckets": buckets, "sum": acc_sum, "count": total}


class _Family:
    """A named instrument family holding per-label-set children."""

    def __init__(
        self,
        name: str,
        kind: str,
        help_text: str,
        labelnames: tuple[str, ...],
        buckets: tuple[float, ...] = (),
    ) -> None:
        self.name = _check_name(name)
        self.kind = kind
        self.help = help_text
        self.labelnames = labelnames
        self.buckets = buckets
        self._lock = threading.Lock()
        self._children: dict[tuple[str, ...], Any] = {}
        if not labelnames:
            self._children[()] = self._new_child()

    def _new_child(self) -> Any:
        if self.kind == "histogram":
            return _HistogramChild(self.buckets)
        return _Child()

    def labels(self, **labels: str) -> Any:
        if tuple(sorted(labels)) != tuple(sorted(self.labelnames)):
            raise ValueError(
                f"{self.name} expects labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}"
            )
        key = tuple(str(labels[name]) for name in self.labelnames)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._children[key] = self._new_child()
            return child

    # -- unlabelled families proxy straight to their single child ------
    def inc(self, amount: float = 1.0) -> None:
        self._children[()].inc(amount)

    def set(self, value: float) -> None:
        self._children[()].set(value)

    def observe(self, value: float) -> None:
        self._children[()].observe(value)

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            items = list(self._children.items())
        series = []
        for key, child in items:
            labels = dict(zip(self.labelnames, key))
            if self.kind == "histogram":
                series.append({"labels": labels, **child.snapshot()})
            else:
                series.append({"labels": labels, "value": child.value})
        return {
            "name": self.name,
            "kind": self.kind,
            "help": self.help,
            "series": series,
        }


class MetricsRegistry:
    """A thread-safe collection of instrument families plus collectors.

    Registration is idempotent: asking for an already-registered name
    returns the existing family, provided kind/labels/buckets agree —
    a mismatch is a programming error and raises.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: dict[str, _Family] = {}
        self._collectors: list[Callable[[], Iterable[dict[str, Any]]]] = []

    @property
    def enabled(self) -> bool:
        return True

    def _register(
        self,
        name: str,
        kind: str,
        help_text: str,
        labelnames: Iterable[str],
        buckets: tuple[float, ...] = (),
    ) -> _Family:
        names = _check_labelnames(labelnames)
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if family.kind != kind or family.labelnames != names or (
                    kind == "histogram" and family.buckets != buckets
                ):
                    raise ValueError(
                        f"metric {name!r} already registered with a "
                        f"different kind, labels, or buckets"
                    )
                return family
            family = _Family(name, kind, help_text, names, buckets)
            self._families[name] = family
            return family

    def counter(
        self, name: str, help_text: str = "", labelnames: Iterable[str] = ()
    ) -> _Family:
        return self._register(name, "counter", help_text, labelnames)

    def gauge(
        self, name: str, help_text: str = "", labelnames: Iterable[str] = ()
    ) -> _Family:
        return self._register(name, "gauge", help_text, labelnames)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labelnames: Iterable[str] = (),
        buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> _Family:
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(not math.isfinite(b) for b in bounds):
            raise ValueError("bucket bounds must be finite (+Inf is implied)")
        return self._register(name, "histogram", help_text, labelnames, bounds)

    def register_collector(
        self, collector: Callable[[], Iterable[dict[str, Any]]]
    ) -> None:
        """Add a callable producing family snapshots at scrape time.

        Collectors are how live state with an existing owner (breaker
        boards, fault injectors) shows up in the exposition without
        being copied into the registry: the callable reads the owner
        and returns dicts shaped like :meth:`_Family.snapshot`.
        """
        with self._lock:
            self._collectors.append(collector)

    def collect(self) -> list[dict[str, Any]]:
        """All family snapshots (registered first, then collectors)."""
        with self._lock:
            families = list(self._families.values())
            collectors = list(self._collectors)
        out = [family.snapshot() for family in families]
        for collector in collectors:
            for snap in collector():
                if snap.get("kind") not in _KINDS:
                    raise ValueError(
                        f"collector produced invalid kind {snap.get('kind')!r}"
                    )
                _check_name(str(snap.get("name", "")))
                out.append(snap)
        return sorted(out, key=lambda snap: snap["name"])

    def snapshot(self) -> dict[str, Any]:
        """A JSON-able dump of every family (``repro fit --metrics-out``)."""
        return {"schema": "repro.metrics/v1", "families": self.collect()}


class _NullInstrument:
    """No-op stand-in for a family and all its children."""

    __slots__ = ()

    def labels(self, **labels: str) -> "_NullInstrument":
        return self

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry:
    """A registry whose instruments do nothing.

    The uninstrumented baseline: servers built with ``metrics=False``
    get this, so the overhead gate can bench telemetry against its
    true absence rather than against commented-out code.
    """

    @property
    def enabled(self) -> bool:
        return False

    def counter(self, *args: Any, **kwargs: Any) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, *args: Any, **kwargs: Any) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, *args: Any, **kwargs: Any) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def register_collector(self, collector: Any) -> None:
        pass

    def collect(self) -> list[dict[str, Any]]:
        return []

    def snapshot(self) -> dict[str, Any]:
        return {"schema": "repro.metrics/v1", "families": []}


NULL_REGISTRY = NullRegistry()

_GLOBAL_LOCK = threading.Lock()
_GLOBAL: MetricsRegistry | None = None


def get_registry() -> MetricsRegistry:
    """The process-wide registry (training loop, CLI run profiles)."""
    global _GLOBAL
    with _GLOBAL_LOCK:
        if _GLOBAL is None:
            _GLOBAL = MetricsRegistry()
        return _GLOBAL


def reset_registry() -> MetricsRegistry:
    """Swap in a fresh process-wide registry (test isolation hook)."""
    global _GLOBAL
    with _GLOBAL_LOCK:
        _GLOBAL = MetricsRegistry()
        return _GLOBAL


def resolve_registry(
    metrics: "MetricsRegistry | NullRegistry | bool | None",
) -> "MetricsRegistry | NullRegistry":
    """Normalize a component's ``metrics=`` constructor argument.

    ``None`` -> a fresh private registry, ``False`` -> the null
    registry, ``True`` -> the process-wide registry, a registry ->
    itself.
    """
    if metrics is None:
        return MetricsRegistry()
    if metrics is False:
        return NULL_REGISTRY
    if metrics is True:
        return get_registry()
    return metrics


def merge_histograms(*snapshots: dict[str, Any]) -> dict[str, Any]:
    """Merge histogram series snapshots taken over identical buckets.

    Cumulative bucket counts, sums and counts are additive, so merging
    per-writer (or per-worker) histograms is exact — the property the
    hypothesis round-trip test exercises and ``/admin/metrics``
    aggregation relies on.
    """
    if not snapshots:
        raise ValueError("nothing to merge")
    bounds = [b for b, _ in snapshots[0]["buckets"]]
    for snap in snapshots[1:]:
        if [b for b, _ in snap["buckets"]] != bounds:
            raise ValueError("histogram bucket bounds differ; cannot merge")
    buckets = [
        [bound, sum(snap["buckets"][i][1] for snap in snapshots)]
        for i, bound in enumerate(bounds)
    ]
    return {
        "buckets": buckets,
        "sum": sum(snap["sum"] for snap in snapshots),
        "count": sum(snap["count"] for snap in snapshots),
    }


def quantile_from_buckets(
    buckets: Iterable[Iterable[float]], q: float
) -> float | None:
    """Estimate quantile *q* from cumulative histogram buckets.

    Linear interpolation inside the winning bucket, the same estimate
    ``histogram_quantile`` makes. Returns ``None`` for an empty
    histogram; an answer in the +Inf bucket clamps to the largest
    finite bound.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    pairs = [(float(b), float(c)) for b, c in buckets]
    if not pairs:
        return None
    pairs.sort(key=lambda pair: pair[0])
    total = pairs[-1][1]
    if total <= 0:
        return None
    rank = q * total
    lower_bound = 0.0
    lower_count = 0.0
    for bound, count in pairs:
        if count >= rank:
            if math.isinf(bound):
                return lower_bound if lower_bound > 0 else None
            if count == lower_count:
                return bound
            frac = (rank - lower_count) / (count - lower_count)
            return lower_bound + frac * (bound - lower_bound)
        lower_bound, lower_count = bound, count
    return pairs[-1][0] if math.isfinite(pairs[-1][0]) else None


def breaker_collector(board: Any) -> Callable[[], list[dict[str, Any]]]:
    """A collector exposing a ``BreakerBoard`` as a state gauge.

    One ``repro_breaker_state{url=...}`` series per lane the board has
    seen, valued by :data:`BREAKER_STATE_CODES`. Reads the *same*
    ``snapshot()`` that ``/admin/status`` serves — a view, not a copy.
    """

    def collect() -> list[dict[str, Any]]:
        series = [
            {
                "labels": {"url": url},
                "value": float(BREAKER_STATE_CODES.get(state, -1)),
            }
            for url, state in sorted(board.snapshot().items())
        ]
        if not series:
            return []
        return [
            {
                "name": "repro_breaker_state",
                "kind": "gauge",
                "help": "Circuit breaker state per worker lane "
                "(0=closed, 1=half-open, 2=open).",
                "series": series,
            }
        ]

    return collect


def fault_collector(injector: Any) -> Callable[[], list[dict[str, Any]]]:
    """A collector exposing a ``FaultInjector``'s per-site hit counts."""

    def collect() -> list[dict[str, Any]]:
        series = [
            {"labels": {"site": site}, "value": float(count)}
            for site, count in sorted(injector.counts().items())
        ]
        if not series:
            return []
        return [
            {
                "name": "repro_fault_site_hits_total",
                "kind": "counter",
                "help": "Fault-injection site hit counts "
                "(every check, fired or not).",
                "series": series,
            }
        ]

    return collect


def record_fit_sweep(
    stats: dict[str, Any],
    *,
    engine: str,
    registry: "MetricsRegistry | NullRegistry | None" = None,
) -> None:
    """Publish one optimizer sweep's diagnostics into the registry.

    Mirrors the per-sweep dict the engine already appends to its
    ``diagnostics`` — counters for sweeps/moves, a gauge for the latest
    move rate, and per-phase wall-time histograms for any ``*_s`` /
    ``*_wall_s`` keys the sweep strategy reported (scoring, repair,
    merge, ...).
    """
    reg = registry if registry is not None else get_registry()
    if not reg.enabled:
        return
    mode = str(stats.get("mode", ""))
    reg.counter(
        "repro_fit_sweeps_total",
        "Optimizer sweeps completed.",
        ("engine", "mode"),
    ).labels(engine=engine, mode=mode).inc()
    reg.counter(
        "repro_fit_moves_total",
        "Point reassignments applied across sweeps.",
        ("engine",),
    ).labels(engine=engine).inc(float(stats.get("moves", 0)))
    if "move_rate" in stats:
        reg.gauge(
            "repro_fit_move_rate",
            "Fraction of points moved in the latest sweep.",
            ("engine",),
        ).labels(engine=engine).set(float(stats["move_rate"]))
    if "workers" in stats:
        reg.gauge(
            "repro_fit_backend_workers",
            "Training-backend worker count for the latest sweep.",
            ("engine",),
        ).labels(engine=engine).set(float(stats["workers"]))
    walls = reg.histogram(
        "repro_fit_phase_seconds",
        "Wall time per optimizer phase per sweep.",
        ("engine", "phase"),
    )
    for key, value in stats.items():
        phase = None
        if key.endswith("_wall_s"):
            phase = key[: -len("_wall_s")]
        elif key.endswith("_s") and key not in ("moves_s",):
            phase = key[: -len("_s")]
        if phase and isinstance(value, (int, float)):
            walls.labels(engine=engine, phase=phase).observe(float(value))
