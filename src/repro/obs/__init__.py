"""Fleet-wide telemetry: metrics registry, exposition, request tracing.

``repro.obs`` is the zero-dependency observability layer. It has three
parts and no opinions about who uses them:

* :mod:`repro.obs.metrics` — counters, gauges, fixed-bucket latency
  histograms in a thread-safe :class:`MetricsRegistry`, plus
  *collectors* that expose live state (breaker boards, fault
  injectors) as series without copying it.
* :mod:`repro.obs.prometheus` — text exposition format 0.0.4 rendering
  and a strict parser, used by ``GET /metrics``, the supervisor-side
  ``/admin/metrics`` aggregation, and the conformance tests.
* :mod:`repro.obs.trace` — ``X-Trace-Id`` / ``X-Parent-Span`` request
  tracing with a bounded JSONL span sink and tree rendering for the
  ``repro trace`` CLI.
"""

from .metrics import (
    BREAKER_STATE_CODES,
    DEFAULT_LATENCY_BUCKETS,
    NULL_REGISTRY,
    MetricsRegistry,
    NullRegistry,
    breaker_collector,
    fault_collector,
    get_registry,
    merge_histograms,
    quantile_from_buckets,
    record_fit_sweep,
    reset_registry,
    resolve_registry,
)
from .prometheus import (
    CONTENT_TYPE as PROMETHEUS_CONTENT_TYPE,
    merge_scrapes,
    parse_text,
    render_families,
    render_registry,
)
from .trace import (
    PARENT_HEADER,
    SINK_ENV,
    TRACE_HEADER,
    Span,
    TraceSink,
    get_sink,
    load_spans,
    new_span_id,
    new_trace_id,
    render_trace_tree,
    start_span,
)

__all__ = [
    "BREAKER_STATE_CODES",
    "DEFAULT_LATENCY_BUCKETS",
    "NULL_REGISTRY",
    "MetricsRegistry",
    "NullRegistry",
    "PROMETHEUS_CONTENT_TYPE",
    "PARENT_HEADER",
    "SINK_ENV",
    "TRACE_HEADER",
    "Span",
    "TraceSink",
    "breaker_collector",
    "fault_collector",
    "get_registry",
    "get_sink",
    "load_spans",
    "merge_histograms",
    "merge_scrapes",
    "new_span_id",
    "new_trace_id",
    "parse_text",
    "quantile_from_buckets",
    "record_fit_sweep",
    "render_families",
    "render_registry",
    "render_trace_tree",
    "reset_registry",
    "resolve_registry",
    "start_span",
]
