"""Doc2Vec (PV-DBOW) with negative sampling, from scratch in numpy.

The paper embeds each kinematics word problem as a 100-dimensional vector
"using Doc2Vec models [15]" (Le & Mikolov 2014). gensim is unavailable
offline, so this module implements the PV-DBOW variant directly:

* each document d has a vector ``D_d``; each vocabulary word w an output
  vector ``W_w``;
* for every (document, word-in-document) pair the model maximizes
  ``log σ(D_d · W_w)`` plus ``log σ(−D_d · W_u)`` for ``n_negative``
  sampled noise words u (negative sampling, Mikolov et al. 2013);
* training is SGD over shuffled pairs with a linearly decaying rate.

For the 161-document corpus this trains in well under a second and yields
embeddings where lexical overlap (shared motion vocabulary) translates to
cosine similarity — the property the Kinematics experiment relies on.
"""

from __future__ import annotations

import numpy as np

from .tokenize import tokenize_corpus
from .vocab import Vocabulary


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -30.0, 30.0)))


class Doc2Vec:
    """PV-DBOW document embedder.

    Args:
        dim: embedding dimensionality (paper: 100).
        epochs: passes over all (doc, word) pairs.
        lr: initial learning rate, decayed linearly to ``lr/10``.
        n_negative: negative samples per positive pair.
        min_count: vocabulary frequency floor.
        seed: RNG seed or generator.
    """

    def __init__(
        self,
        dim: int = 100,
        *,
        epochs: int = 40,
        lr: float = 0.05,
        n_negative: int = 5,
        min_count: int = 1,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        if epochs <= 0:
            raise ValueError(f"epochs must be positive, got {epochs}")
        if n_negative < 1:
            raise ValueError(f"n_negative must be >= 1, got {n_negative}")
        self.dim = dim
        self.epochs = epochs
        self.lr = lr
        self.n_negative = n_negative
        self.min_count = min_count
        self._rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
        self.vocabulary: Vocabulary | None = None
        self.doc_vectors: np.ndarray | None = None
        self.word_vectors: np.ndarray | None = None

    def fit_transform(self, texts: list[str]) -> np.ndarray:
        """Train on raw *texts* and return the ``(n_docs, dim)`` matrix."""
        if not texts:
            raise ValueError("texts must be non-empty")
        documents = tokenize_corpus(texts)
        vocab = Vocabulary(documents, min_count=self.min_count)
        encoded = vocab.encode_corpus(documents)
        self.vocabulary = vocab

        rng = self._rng
        n_docs, n_words = len(texts), len(vocab)
        doc_vecs = (rng.random((n_docs, self.dim)) - 0.5) / self.dim
        word_vecs = np.zeros((n_words, self.dim))

        # Flatten to (doc_id, word_id) training pairs.
        pairs = np.array(
            [(d, w) for d, words in enumerate(encoded) for w in words], dtype=np.int64
        )
        if pairs.size == 0:
            raise ValueError("corpus has no in-vocabulary tokens")
        noise = vocab.unigram_table()

        total_steps = self.epochs * pairs.shape[0]
        step = 0
        for _ in range(self.epochs):
            order = rng.permutation(pairs.shape[0])
            negatives = rng.choice(n_words, size=(pairs.shape[0], self.n_negative), p=noise)
            for row, pair_idx in enumerate(order):
                d, w = pairs[pair_idx]
                lr = self.lr * max(0.1, 1.0 - step / total_steps)
                step += 1
                dvec = doc_vecs[d]
                targets = np.concatenate(([w], negatives[row]))
                labels = np.zeros(targets.shape[0])
                labels[0] = 1.0
                wmat = word_vecs[targets]  # (1+neg, dim)
                scores = _sigmoid(wmat @ dvec)
                grad = (scores - labels)[:, None]  # (1+neg, 1)
                d_grad = (grad * wmat).sum(axis=0)
                word_vecs[targets] -= lr * grad * dvec[None, :]
                doc_vecs[d] = dvec - lr * d_grad
        self.doc_vectors = doc_vecs
        self.word_vectors = word_vecs
        return doc_vecs

    def most_similar_words(self, token: str, topn: int = 5) -> list[tuple[str, float]]:
        """Nearest words to *token* by cosine similarity (for inspection)."""
        if self.vocabulary is None or self.word_vectors is None:
            raise RuntimeError("model is not fitted")
        if token not in self.vocabulary:
            raise KeyError(f"token {token!r} not in vocabulary")
        w = self.word_vectors
        norms = np.linalg.norm(w, axis=1)
        norms = np.where(norms > 0, norms, 1.0)
        unit = w / norms[:, None]
        query = unit[self.vocabulary.index[token]]
        sims = unit @ query
        order = np.argsort(-sims)
        out = []
        for idx in order:
            candidate = self.vocabulary.tokens[idx]
            if candidate == token:
                continue
            out.append((candidate, float(sims[idx])))
            if len(out) == topn:
                break
        return out
