"""Vocabulary with frequency bookkeeping for embedding training."""

from __future__ import annotations

from collections import Counter

import numpy as np


class Vocabulary:
    """Token ↔ id mapping with counts.

    Args:
        documents: tokenized corpus.
        min_count: tokens rarer than this are dropped (they carry noise,
            not signal, for embedding training).
    """

    def __init__(self, documents: list[list[str]], min_count: int = 1) -> None:
        if min_count < 1:
            raise ValueError(f"min_count must be >= 1, got {min_count}")
        counts = Counter(tok for doc in documents for tok in doc)
        kept = sorted(t for t, c in counts.items() if c >= min_count)
        if not kept:
            raise ValueError("vocabulary is empty after min_count filtering")
        self.tokens: list[str] = kept
        self.index: dict[str, int] = {t: i for i, t in enumerate(kept)}
        self.counts = np.array([counts[t] for t in kept], dtype=np.float64)

    def __len__(self) -> int:
        return len(self.tokens)

    def __contains__(self, token: str) -> bool:
        return token in self.index

    def encode(self, document: list[str]) -> np.ndarray:
        """Token ids of *document*, silently skipping out-of-vocab tokens."""
        return np.array(
            [self.index[t] for t in document if t in self.index], dtype=np.int64
        )

    def encode_corpus(self, documents: list[list[str]]) -> list[np.ndarray]:
        return [self.encode(d) for d in documents]

    def unigram_table(self, power: float = 0.75) -> np.ndarray:
        """Negative-sampling distribution ∝ count^power (word2vec default)."""
        probs = self.counts**power
        return probs / probs.sum()
