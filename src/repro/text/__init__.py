"""Text substrate: tokenizer, vocabulary, Doc2Vec (PV-DBOW), LSA."""

from .doc2vec import Doc2Vec
from .lsa import LSAEmbedder, tf_idf_matrix
from .tokenize import NUMBER_TOKEN, tokenize, tokenize_corpus
from .vocab import Vocabulary

__all__ = [
    "Doc2Vec",
    "LSAEmbedder",
    "NUMBER_TOKEN",
    "Vocabulary",
    "tf_idf_matrix",
    "tokenize",
    "tokenize_corpus",
]
