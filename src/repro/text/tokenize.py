"""Minimal word tokenizer for the kinematics word-problem corpus."""

from __future__ import annotations

import re

_TOKEN_RE = re.compile(r"[a-zA-Z]+|\d+(?:\.\d+)?")

#: Numbers are collapsed to this token: for clustering word problems, the
#: fact that a quantity appears matters, the digits do not.
NUMBER_TOKEN = "<num>"


def tokenize(text: str, collapse_numbers: bool = True) -> list[str]:
    """Lowercase word tokens; numeric literals collapse to ``<num>``.

    >>> tokenize("A ball is thrown at 25 m/s.")
    ['a', 'ball', 'is', 'thrown', 'at', '<num>', 'm', 's']
    """
    tokens = []
    for match in _TOKEN_RE.finditer(text):
        tok = match.group(0)
        if tok[0].isdigit():
            tokens.append(NUMBER_TOKEN if collapse_numbers else tok)
        else:
            tokens.append(tok.lower())
    return tokens


def tokenize_corpus(texts: list[str], collapse_numbers: bool = True) -> list[list[str]]:
    """Tokenize every document in *texts*."""
    return [tokenize(t, collapse_numbers) for t in texts]
