"""TF-IDF + truncated SVD (latent semantic analysis) document embedder.

A deterministic, optimization-free alternative to :class:`Doc2Vec` for the
Kinematics experiment. Useful both as a faster embedding path and as a
cross-check that experimental conclusions do not hinge on embedding
training noise.
"""

from __future__ import annotations

import numpy as np

from .tokenize import tokenize_corpus
from .vocab import Vocabulary


def tf_idf_matrix(texts: list[str], min_count: int = 1) -> tuple[np.ndarray, Vocabulary]:
    """Dense TF-IDF matrix of shape ``(n_docs, |vocab|)``.

    TF is raw count normalized by document length; IDF is the smoothed
    ``log((1 + n) / (1 + df)) + 1`` variant.
    """
    if not texts:
        raise ValueError("texts must be non-empty")
    documents = tokenize_corpus(texts)
    vocab = Vocabulary(documents, min_count=min_count)
    n_docs = len(texts)
    counts = np.zeros((n_docs, len(vocab)))
    for i, doc in enumerate(documents):
        ids = vocab.encode(doc)
        if ids.size:
            np.add.at(counts[i], ids, 1.0)
    lengths = counts.sum(axis=1, keepdims=True)
    tf = counts / np.maximum(lengths, 1.0)
    df = (counts > 0).sum(axis=0)
    idf = np.log((1.0 + n_docs) / (1.0 + df)) + 1.0
    return tf * idf[None, :], vocab


class LSAEmbedder:
    """Embed documents by truncated SVD of their TF-IDF matrix.

    Args:
        dim: target dimensionality (clipped to the matrix rank).
        min_count: vocabulary frequency floor.
    """

    def __init__(self, dim: int = 100, min_count: int = 1) -> None:
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        self.dim = dim
        self.min_count = min_count
        self.vocabulary: Vocabulary | None = None
        self.singular_values: np.ndarray | None = None

    def fit_transform(self, texts: list[str]) -> np.ndarray:
        """Return an ``(n_docs, min(dim, rank))`` embedding matrix."""
        tfidf, vocab = tf_idf_matrix(texts, min_count=self.min_count)
        self.vocabulary = vocab
        u, s, _ = np.linalg.svd(tfidf, full_matrices=False)
        rank = int(np.sum(s > 1e-12))
        keep = min(self.dim, rank)
        if keep == 0:
            raise ValueError("TF-IDF matrix has rank zero")
        self.singular_values = s[:keep]
        return u[:, :keep] * s[:keep][None, :]
