"""Engine sweep strategies — objective parity and wall-clock.

Compares the three :mod:`repro.core.engine` sweep strategies on an
Adult-shaped synthetic workload (n ≈ 10k, k = 5, five categorical
sensitive attributes plus one numeric, the paper's §5.1 configuration):

* ``sequential`` — the paper-literal point-at-a-time local search;
* ``chunked``    — vectorized chunk scoring with surgical per-move
  repair; *exact* (identical labels and objective trajectory);
* ``minibatch``  — the §6.1 approximation (frozen-batch decisions).

Asserted invariants: chunked reproduces the sequential labels and
objective bit-for-bit and is at least 5× faster at this size; minibatch
stays within a quality band of the exact objective.
Output: ``results/engine_sweeps.txt``. ``REPRO_BENCH_ENGINE_N``
overrides the problem size.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.core import CategoricalSpec, FairKM, NumericSpec
from repro.experiments.paper import write_result
from repro.experiments.tables import format_table

from conftest import emit

N = int(os.environ.get("REPRO_BENCH_ENGINE_N", "10000"))
DIM, K = 12, 5
CARDINALITIES = (7, 2, 5, 9, 3)
ENGINES = ("sequential", "chunked", "minibatch")


def _problem():
    rng = np.random.default_rng(0)
    points = np.vstack(
        [rng.normal(loc=rng.normal(0, 3, DIM), size=(N // 4, DIM)) for _ in range(4)]
    )
    attr_rng = np.random.default_rng(1)
    cats = [
        CategoricalSpec(f"c{i}", attr_rng.integers(0, v, N), n_values=v)
        for i, v in enumerate(CARDINALITIES)
    ]
    nums = [NumericSpec("z", attr_rng.normal(size=N))]
    return points, cats, nums


def test_engine_sweeps(benchmark):
    points, cats, nums = _problem()
    lam = (N / K) ** 2
    runs = {}

    def compare():
        for engine in ENGINES:
            start = time.perf_counter()
            result = FairKM(K, lambda_=lam, seed=0, engine=engine).fit(
                points, categorical=cats, numeric=nums
            )
            runs[engine] = (time.perf_counter() - start, result)
        return runs

    benchmark.pedantic(compare, rounds=1, iterations=1)

    seq_t, seq = runs["sequential"]
    rows = []
    for engine in ENGINES:
        elapsed, result = runs[engine]
        rows.append(
            [
                engine,
                f"{elapsed:.2f}",
                f"{seq_t / elapsed:.2f}x",
                f"{result.n_iter}",
                f"{result.objective:.6e}",
                f"{abs(result.objective - seq.objective) / seq.objective:.2e}",
            ]
        )
    text = format_table(
        ["engine", "fit seconds", "speedup", "iters", "objective", "rel. obj. gap"],
        rows,
        title=f"Engine sweep comparison (n={N}, k={K}, |S|={len(CARDINALITIES) + 1})",
    )
    write_result("engine_sweeps.txt", text)
    emit("Engine sweeps (parity and wall-clock)", text)

    # Chunked is exact: identical labels and objective trajectory.
    chunk_t, chunk = runs["chunked"]
    np.testing.assert_array_equal(chunk.labels, seq.labels)
    assert chunk.objective == seq.objective
    assert chunk.objective_history == seq.objective_history
    # ... and >= 5x faster at n ~ 10k (the tentpole target). Smaller
    # REPRO_BENCH_ENGINE_N runs skip the wall-clock assertion: fixed
    # per-call overhead needs a few thousand points to amortize.
    if N >= 8000:
        assert seq_t / chunk_t >= 5.0, f"chunked speedup {seq_t / chunk_t:.2f}x < 5x"

    # Minibatch is approximate but must stay in a sane quality band.
    _, mb = runs["minibatch"]
    assert mb.objective <= seq.objective * 1.25
