"""Engine sweep strategies — objective parity and wall-clock.

Compares the three :mod:`repro.core.engine` sweep strategies on an
Adult-shaped synthetic workload (n ≈ 10k, k = 5, five categorical
sensitive attributes plus one numeric, the paper's §5.1 configuration):

* ``sequential`` — the paper-literal point-at-a-time local search;
* ``chunked``    — vectorized chunk scoring with surgical per-move
  repair; *exact* (identical labels and objective trajectory);
* ``minibatch``  — the §6.1 approximation (frozen-batch decisions).

Asserted invariants: chunked reproduces the sequential labels and
objective bit-for-bit and is at least 5× faster at this size; minibatch
stays within a quality band of the exact objective.

Measurements go through the :mod:`repro.perf.harness` emitter:
``results/BENCH_engine_sweeps.json`` holds the records (speedup column
is vs the sequential engine) and ``results/engine_sweeps.txt`` is
rendered from that JSON. The jobs axis lives in ``repro bench`` /
``results/BENCH_engine.json``. ``REPRO_BENCH_ENGINE_N`` overrides the
problem size.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.core import CategoricalSpec, FairKM, NumericSpec
from repro.experiments.paper import RESULTS_DIR, write_result
from repro.perf.harness import BenchRecord, bench_payload, render_bench, write_bench

from conftest import emit

N = int(os.environ.get("REPRO_BENCH_ENGINE_N", "10000"))
DIM, K = 12, 5
CARDINALITIES = (7, 2, 5, 9, 3)
ENGINES = ("sequential", "chunked", "minibatch")


def _problem():
    rng = np.random.default_rng(0)
    points = np.vstack(
        [rng.normal(loc=rng.normal(0, 3, DIM), size=(N // 4, DIM)) for _ in range(4)]
    )
    attr_rng = np.random.default_rng(1)
    cats = [
        CategoricalSpec(f"c{i}", attr_rng.integers(0, v, N), n_values=v)
        for i, v in enumerate(CARDINALITIES)
    ]
    nums = [NumericSpec("z", attr_rng.normal(size=N))]
    return points, cats, nums


def test_engine_sweeps(benchmark):
    points, cats, nums = _problem()
    lam = (N / K) ** 2
    runs = {}

    def compare():
        for engine in ENGINES:
            start = time.perf_counter()
            result = FairKM(K, lambda_=lam, seed=0, engine=engine).fit(
                points, categorical=cats, numeric=nums
            )
            runs[engine] = (time.perf_counter() - start, result)
        return runs

    benchmark.pedantic(compare, rounds=1, iterations=1)

    seq_t, seq = runs["sequential"]
    records = []
    for engine in ENGINES:
        elapsed, result = runs[engine]
        records.append(
            BenchRecord(
                f"engine[{engine}]", N, K, 1,
                elapsed, N * result.n_iter / elapsed if elapsed > 0 else 0.0,
                speedup=seq_t / elapsed if elapsed > 0 else 0.0,
                extra={
                    "n_iter": result.n_iter,
                    "objective": result.objective,
                    "rel_obj_gap": abs(result.objective - seq.objective) / seq.objective,
                },
            )
        )
    write_bench(RESULTS_DIR / "BENCH_engine_sweeps.json", "engine_sweeps", records)
    text = render_bench(bench_payload("engine_sweeps", records))
    write_result("engine_sweeps.txt", text)
    emit("Engine sweeps (parity and wall-clock)", text)

    # Chunked is exact: identical labels and objective trajectory.
    chunk_t, chunk = runs["chunked"]
    np.testing.assert_array_equal(chunk.labels, seq.labels)
    assert chunk.objective == seq.objective
    assert chunk.objective_history == seq.objective_history
    # ... and >= 5x faster at n ~ 10k (the tentpole target). Smaller
    # REPRO_BENCH_ENGINE_N runs skip the wall-clock assertion: fixed
    # per-call overhead needs a few thousand points to amortize.
    if N >= 8000:
        assert seq_t / chunk_t >= 5.0, f"chunked speedup {seq_t / chunk_t:.2f}x < 5x"

    # Minibatch is approximate but must stay in a sane quality band.
    _, mb = runs["minibatch"]
    assert mb.objective <= seq.objective * 1.25
