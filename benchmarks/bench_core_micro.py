"""Micro-benchmarks of the core primitives (classic pytest-benchmark).

These time the inner-loop operations whose complexity §4.3.1 analyses:
the per-object move-delta evaluation (the optimizer's hot path), the
vectorized batch variant, a cache resync, and a full K-Means fit for
reference. Useful for catching performance regressions.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import KMeans
from repro.core import CategoricalSpec, NumericSpec
from repro.core.state import ClusterState

N, DIM, K = 4000, 12, 8


@pytest.fixture(scope="module")
def state() -> ClusterState:
    rng = np.random.default_rng(0)
    points = rng.normal(size=(N, DIM))
    cats = [
        CategoricalSpec("a", rng.integers(0, 7, N), n_values=7),
        CategoricalSpec("b", rng.integers(0, 2, N), n_values=2),
        CategoricalSpec("c", rng.integers(0, 41, N), n_values=41),
    ]
    nums = [NumericSpec("z", rng.normal(size=N))]
    return ClusterState(points, rng.integers(0, K, N), K, cats, nums)


def test_move_deltas_single(benchmark, state):
    """Hot path: one object's objective delta against all k clusters."""
    benchmark(state.move_deltas, 123, 1e6)


def test_move_deltas_batch(benchmark, state):
    """Vectorized deltas for 512 objects (mini-batch primitive)."""
    indices = np.arange(512)
    benchmark(state.batch_move_deltas, indices, 1e6)


def test_apply_move_roundtrip(benchmark, state):
    """Apply + undo one move (keeps the state unchanged across rounds)."""
    original = int(state.labels[7])
    target = (original + 1) % K

    def roundtrip():
        state.apply_move(7, target)
        state.apply_move(7, original)

    benchmark(roundtrip)


def test_resync(benchmark, state):
    """Full cache rebuild from labels (once per iteration in FairKM)."""
    benchmark(state.resync)


def test_kmeans_reference_fit(benchmark):
    """Reference point: one Lloyd's fit on the same problem size."""
    rng = np.random.default_rng(1)
    points = rng.normal(size=(N, DIM))

    benchmark(lambda: KMeans(K, seed=0).fit(points))
