"""Ablation A2 — scaling with sensitive-attribute count and cardinality.

The paper's first future-work direction (§6.1): "performance trends of
FairKM with increasing number of sensitive attributes as well as
increasing number of values per sensitive attribute". This bench sweeps
both axes on the synthetic generator and reports fit time and fairness.
Output: ``results/ablation_scaling.txt``.
"""

from __future__ import annotations

import time

from repro.core import FairKM
from repro.data import make_fair_problem
from repro.experiments.paper import write_result
from repro.experiments.tables import format_table
from repro.metrics import fairness_report

from conftest import emit

N = 1200
K = 4


def _run(categorical):
    ds = make_fair_problem(
        N, n_latent=K, separation=2.0, categorical=categorical, seed=0
    )
    features = ds.feature_matrix()
    cats, nums = ds.sensitive_specs()
    start = time.perf_counter()
    result = FairKM(K, lambda_=(N / K) ** 2, seed=0).fit(
        features, categorical=cats, numeric=nums
    )
    elapsed = time.perf_counter() - start
    report = fairness_report(ds.sensitive_categorical(), result.labels, K)
    return elapsed, result, report


def test_ablation_attribute_count(benchmark):
    rows = []
    timings = {}

    def sweep():
        for count in (1, 2, 4, 8):
            categorical = [(f"s{i}", 3, 0.8) for i in range(count)]
            timings[count] = _run(categorical)
        return timings

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    for count, (elapsed, result, report) in sorted(timings.items()):
        rows.append(
            [str(count), f"{elapsed:.2f}", f"{result.n_iter}",
             f"{report.mean.ae:.4f}", f"{result.kmeans_term:.1f}"]
        )
    text = format_table(
        ["#S attributes", "fit seconds", "iters", "mean AE", "KM term"],
        rows,
        title=f"Ablation A2a: FairKM vs number of sensitive attributes (n={N})",
    )
    write_result("ablation_scaling_count.txt", text)
    emit("Ablation A2a (attribute count)", text)
    # Per-attribute fairness should not collapse as attributes are added.
    final_ae = [v[2].mean.ae for v in timings.values()]
    assert max(final_ae) < 0.25


def test_ablation_cardinality(benchmark):
    rows = []
    timings = {}

    def sweep():
        for t in (2, 5, 10, 20, 40):
            timings[t] = _run([("s", t, 0.8)])
        return timings

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    baseline_ae = None
    for t, (elapsed, result, report) in sorted(timings.items()):
        ae = report.attribute("s").ae
        baseline_ae = ae if baseline_ae is None else baseline_ae
        rows.append(
            [str(t), f"{elapsed:.2f}", f"{ae:.4f}", f"{report.attribute('s').me:.4f}"]
        )
    text = format_table(
        ["|Values(S)|", "fit seconds", "AE", "ME"],
        rows,
        title=f"Ablation A2b: FairKM vs attribute cardinality (n={N})",
    )
    write_result("ablation_scaling_cardinality.txt", text)
    emit("Ablation A2b (cardinality)", text)
    # The paper observes degradation "at a much lower pace than ZGYA" for
    # many-valued attributes; fit time must stay near-flat (O(1) deltas).
    times = [v[0] for v in timings.values()]
    assert max(times) < 4.0 * min(times) + 0.5
