"""Ablation A4 — fair-clustering family comparison (paper Table 1 brought
to life).

On a binary-sensitive-attribute workload (the only setting all methods
support) this bench compares one representative per family: S-blind
K-Means, FairKM (objective), ZGYA (objective, soft), fairlet
decomposition (pre-processing) and Bera-LP (post-processing), on
coherence, AE fairness and Chierichetti balance.
Output: ``results/ablation_families.txt``.
"""

from __future__ import annotations

from repro import CategoricalSpec, FairKM, KMeans
from repro.baselines import BeraFairAssignment, FairKCenter, FairletClustering, ZGYA
from repro.data import make_fair_problem
from repro.experiments.paper import write_result
from repro.experiments.tables import format_table
from repro.metrics import balance, categorical_fairness, clustering_objective

from conftest import emit

N, K = 800, 4


def test_ablation_family_comparison(benchmark):
    ds = make_fair_problem(
        N, n_latent=K, separation=2.2, categorical=[("g", 2, 0.85)], seed=0
    )
    features = ds.feature_matrix()
    codes = ds.column("g").values
    outcomes = {}

    def run_all():
        outcomes["K-Means(N)"] = KMeans(K, seed=0, n_init=5).fit(features).labels
        outcomes["FairKM"] = (
            FairKM(K, seed=0)
            .fit(features, categorical=[CategoricalSpec("g", codes)])
            .labels
        )
        outcomes["ZGYA"] = ZGYA(K, seed=0).fit(features, codes).labels
        outcomes["Fairlets (MCF)"] = FairletClustering(K, seed=0).fit(features, codes).labels
        outcomes["Bera-LP"] = (
            BeraFairAssignment(K, delta=0.15, seed=0)
            .fit(features, {"g": (codes, 2)})
            .labels
        )
        outcomes["FairKCenter"] = FairKCenter(K, seed=0).fit(features, codes).labels
        return outcomes

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = []
    stats = {}
    for name, labels in outcomes.items():
        co = clustering_objective(features, labels, K)
        fair = categorical_fairness(codes, labels, K, 2)
        bal = balance(codes, labels, K, 2)
        stats[name] = (co, fair.ae, bal)
        rows.append([name, f"{co:.1f}", f"{fair.ae:.4f}", f"{fair.mw:.4f}", f"{bal:.3f}"])
    text = format_table(
        ["Method", "CO v", "AE v", "MW v", "Balance ^"],
        rows,
        title=f"Ablation A4: fair-clustering families (n={N}, k={K}, binary S)",
    )
    write_result("ablation_families.txt", text)
    emit("Ablation A4 (families)", text)

    # Every fairness-in-assignment method must improve AE over the blind
    # baseline (FairKCenter constrains *center identity*, not assignment,
    # so it is reported but not asserted on AE).
    blind_ae = stats["K-Means(N)"][1]
    for name in ("FairKM", "ZGYA", "Fairlets (MCF)", "Bera-LP"):
        assert stats[name][1] < blind_ae
    # ...and the blind baseline keeps the best coherence.
    blind_co = stats["K-Means(N)"][0]
    for name in ("FairKM", "ZGYA", "Fairlets (MCF)", "Bera-LP"):
        assert stats[name][0] >= blind_co - 1e-6
    # Fairlets carry the strongest balance guarantee of the group.
    assert stats["Fairlets (MCF)"][2] == max(s[2] for s in stats.values())
