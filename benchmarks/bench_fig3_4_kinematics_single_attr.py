"""Figures 3 & 4 — Kinematics AW/MW: ZGYA(S) vs FairKM(All) vs FairKM(S).

Output: printed (with -s) and
``results/fig3_4_kinematics_single_attribute.txt``.
"""

from __future__ import annotations

from repro.experiments.charts import bar_chart
from repro.experiments.paper import dataset_lambda, write_result, zgya_paper_lambda
from repro.experiments.runner import SuiteConfig, run_suite
from repro.experiments.tables import render_single_attribute_figure

from conftest import emit


def test_fig3_4_kinematics_single_attribute(benchmark, kinematics_dataset, seeds):
    def pipeline():
        config = SuiteConfig(
            k=5,
            seeds=tuple(range(seeds)),
            fairkm_lambda=dataset_lambda(kinematics_dataset.n),
            zgya_lambda=zgya_paper_lambda(kinematics_dataset.n),
            scale_features=False,
            silhouette_sample=None,
            per_attribute_fairkm=True,
        )
        return run_suite(kinematics_dataset, config)

    suite = benchmark.pedantic(pipeline, rounds=1, iterations=1)
    outputs = []
    for fig, metric in (("Figure 3", "AW"), ("Figure 4", "MW")):
        table, series = render_single_attribute_figure(
            suite, metric, title=f"{fig}: Kinematics {metric} comparison (k=5)"
        )
        outputs.append(table + "\n\n" + bar_chart(series, title=f"{fig} ({metric})"))
    text = "\n\n".join(outputs)
    write_result("fig3_4_kinematics_single_attribute.txt", text)
    emit("Figures 3-4", text)

    # Both FairKM variants must stay comparable-or-better than ZGYA(S) on
    # AW for a majority of the five type attributes.
    _, series = render_single_attribute_figure(suite, "AW", title="check")
    wins = sum(
        min(vals["FairKM(All)"], vals["FairKM(S)"]) <= vals["ZGYA(S)"] * 1.05
        for vals in series.values()
    )
    assert wins >= 3
