"""Figures 1 & 2 — Adult AW/MW: ZGYA(S) vs FairKM(All) vs FairKM(S), k=5.

The level-setting comparison of §5.6: per attribute, the single-attribute
FairKM(S) against the single-attribute ZGYA(S), with FairKM(All) between.
Output: printed (with -s) and
``results/fig1_2_adult_single_attribute.txt``.
"""

from __future__ import annotations

from repro.experiments.charts import bar_chart
from repro.experiments.paper import dataset_lambda, write_result, zgya_paper_lambda
from repro.experiments.runner import SuiteConfig, run_suite
from repro.experiments.tables import render_single_attribute_figure

from conftest import emit


def test_fig1_2_adult_single_attribute(benchmark, adult_dataset, seeds):
    def pipeline():
        config = SuiteConfig(
            k=5,
            seeds=tuple(range(seeds)),
            fairkm_lambda=dataset_lambda(adult_dataset.n),
            zgya_lambda=zgya_paper_lambda(adult_dataset.n),
            scale_features=True,
            per_attribute_fairkm=True,
        )
        return run_suite(adult_dataset, config)

    suite = benchmark.pedantic(pipeline, rounds=1, iterations=1)
    outputs = []
    for fig, metric in (("Figure 1", "AW"), ("Figure 2", "MW")):
        table, series = render_single_attribute_figure(
            suite, metric, title=f"{fig}: Adult {metric} comparison (k=5)"
        )
        outputs.append(table + "\n\n" + bar_chart(series, title=f"{fig} ({metric})"))
    text = "\n\n".join(outputs)
    write_result("fig1_2_adult_single_attribute.txt", text)
    emit("Figures 1-2", text)

    # Paper shape: FairKM (either variant) beats ZGYA(S) on AW for most
    # attributes (the paper's Figure 1 shows it for all but race-like
    # skews); require a majority here.
    _, series = render_single_attribute_figure(suite, "AW", title="check")
    wins = sum(
        min(vals["FairKM(All)"], vals["FairKM(S)"]) < vals["ZGYA(S)"]
        for vals in series.values()
    )
    assert wins >= (len(series) + 1) // 2
