"""Ablation A1 — mini-batch FairKM (§6.1 future work) vs exact round-robin.

The paper proposes deferring prototype/representation updates to once per
mini-batch "to speed up FairKM for scalability". This bench quantifies
the trade: wall-clock per fit vs objective/fairness quality across batch
sizes, on an Adult subsample. Output: ``results/ablation_minibatch.txt``.
"""

from __future__ import annotations

import time

from repro.core import FairKM, MiniBatchFairKM
from repro.experiments.paper import dataset_lambda, write_result
from repro.experiments.tables import format_table
from repro.metrics import fairness_report

from conftest import emit

BATCH_SIZES = (32, 128, 512)


def _fit_stats(dataset, model):
    features = dataset.feature_matrix()
    cats, nums = dataset.sensitive_specs()
    start = time.perf_counter()
    result = model.fit(features, categorical=cats, numeric=nums)
    elapsed = time.perf_counter() - start
    report = fairness_report(dataset.sensitive_categorical(), result.labels, result.k)
    return elapsed, result, report


def test_ablation_minibatch(benchmark, adult_dataset):
    lam = dataset_lambda(adult_dataset.n)
    rows = []

    def exact_fit():
        return _fit_stats(adult_dataset, FairKM(5, lambda_=lam, seed=0))

    elapsed, result, report = benchmark.pedantic(exact_fit, rounds=1, iterations=1)
    exact_objective = result.objective
    rows.append(
        ["exact (paper Alg. 1)", f"{elapsed:.2f}", f"{result.objective:.1f}",
         f"{result.kmeans_term:.1f}", f"{report.mean.ae:.4f}"]
    )

    for batch in BATCH_SIZES:
        elapsed, result, report = _fit_stats(
            adult_dataset, MiniBatchFairKM(5, batch_size=batch, lambda_=lam, seed=0)
        )
        rows.append(
            [f"mini-batch B={batch}", f"{elapsed:.2f}", f"{result.objective:.1f}",
             f"{result.kmeans_term:.1f}", f"{report.mean.ae:.4f}"]
        )
        # Quality guardrail: the approximation must stay within 30 % of
        # the exact objective.
        assert result.objective <= exact_objective * 1.3

    text = format_table(
        ["Variant", "fit seconds", "objective", "KM term", "mean AE"],
        rows,
        title=f"Ablation A1: mini-batch FairKM on Adult (n={adult_dataset.n}, k=5)",
    )
    write_result("ablation_minibatch.txt", text)
    emit("Ablation A1 (mini-batch)", text)
