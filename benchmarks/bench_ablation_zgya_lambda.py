"""Ablation A5 — the ZGYA λ cliff.

The FairKM paper's Adult tables show ZGYA with ≈10× worse CO than
K-Means(N) *and* worse fairness than the S-blind baseline — degenerate
behaviour. Our reimplementation is healthy at moderate λ but enters
exactly that regime once λ reaches ≈ n/2 (the multiplicative updates
destabilize when the fairness gradient for rare attribute values
dominates the distortion term). This bench maps that cliff on a
multi-valued Adult attribute, justifying the calibration choices
documented in EXPERIMENTS.md. Output: ``results/ablation_zgya_lambda.txt``.
"""

from __future__ import annotations

from repro.baselines import ZGYA
from repro.cluster import KMeans
from repro.experiments.paper import write_result
from repro.experiments.tables import format_table
from repro.metrics import categorical_fairness, clustering_objective

from conftest import emit


def test_ablation_zgya_lambda_cliff(benchmark, adult_dataset):
    features = adult_dataset.feature_matrix()
    col = adult_dataset.column("marital-status")
    n = adult_dataset.n
    blind = KMeans(5, seed=0, n_init=5).fit(features)
    blind_ae = categorical_fairness(col.values, blind.labels, 5, col.n_values).ae
    grid = [n / 128, n / 32, n / 8, n / 2, n]
    outcomes = {}

    def sweep():
        for lam in grid:
            res = ZGYA(5, lambda_=lam, seed=0).fit(
                features, col.values, n_values=col.n_values
            )
            outcomes[lam] = res
        return outcomes

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [["K-Means(N)", f"{blind.inertia:.0f}", f"{blind_ae:.4f}", "-"]]
    aes = {}
    for lam in grid:
        res = outcomes[lam]
        co = clustering_objective(features, res.labels, 5)
        ae = categorical_fairness(col.values, res.labels, 5, col.n_values).ae
        aes[lam] = (co, ae)
        rows.append([f"ZGYA lam={lam:.0f}", f"{co:.0f}", f"{ae:.4f}", f"{res.n_iter}"])
    text = format_table(
        ["Method", "CO", "marital AE", "iters"],
        rows,
        title=f"Ablation A5: ZGYA lambda cliff on Adult marital-status (n={n})",
    )
    write_result("ablation_zgya_lambda.txt", text)
    emit("Ablation A5 (ZGYA lambda cliff)", text)

    # Healthy regime: moderate λ beats the blind baseline on fairness.
    assert aes[n / 32][1] < blind_ae
    # Cliff: by λ = n the method is worse than blind on fairness AND has
    # paid a large coherence penalty — the paper's Adult portrayal.
    assert aes[n][1] > blind_ae
    assert aes[n][0] > blind.inertia * 1.2
