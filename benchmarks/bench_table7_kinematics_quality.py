"""Table 7 — Kinematics clustering quality (k = 5).

Output: printed (with -s) and ``results/table7_kinematics_quality.txt``.
"""

from __future__ import annotations

from repro.experiments.paper import dataset_lambda, write_result, zgya_paper_lambda
from repro.experiments.runner import SuiteConfig, run_suite
from repro.experiments.tables import render_quality_table

from conftest import emit


def test_table7_kinematics_quality(benchmark, kinematics_dataset, seeds):
    def pipeline():
        config = SuiteConfig(
            k=5,
            seeds=tuple(range(seeds)),
            fairkm_lambda=dataset_lambda(kinematics_dataset.n),
            zgya_lambda=zgya_paper_lambda(kinematics_dataset.n),
            scale_features=False,
            silhouette_sample=None,
        )
        return run_suite(kinematics_dataset, config)

    suite = benchmark.pedantic(pipeline, rounds=1, iterations=1)
    text = render_quality_table(
        {5: suite}, title=f"Table 7: clustering quality on Kinematics ({seeds} seeds)"
    )
    write_result("table7_kinematics_quality.txt", text)
    emit("Table 7", text)

    # Paper shape: K-Means(N) best CO/SH; FairKM close behind; ZGYA worst;
    # FairKM's DevC comparable to ZGYA's (1.12 vs 1.18 in the paper).
    assert suite.kmeans.co <= suite.fairkm.co + 1e-6
    assert suite.fairkm.co < suite.zgya_avg_quality.co
    assert suite.kmeans.sh >= suite.fairkm.sh >= suite.zgya_avg_quality.sh
