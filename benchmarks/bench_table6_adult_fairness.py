"""Table 6 — Adult fairness evaluation (AE / AW / ME / MW per attribute).

Regenerates the per-attribute fairness blocks with the paper's
synthetically-ZGYA-favorable protocol (single cross-S FairKM vs separate
S-targeted ZGYA invocations) at k = 5 and 15. Output: printed (with -s)
and ``results/table6_adult_fairness.txt``.
"""

from __future__ import annotations

from repro.experiments.paper import dataset_lambda, write_result, zgya_paper_lambda
from repro.experiments.runner import SuiteConfig, run_suite
from repro.experiments.tables import render_fairness_table

from conftest import emit


def test_table6_adult_fairness(benchmark, adult_dataset, seeds):
    def pipeline():
        suites = {}
        for k in (5, 15):
            config = SuiteConfig(
                k=k,
                seeds=tuple(range(seeds)),
                fairkm_lambda=dataset_lambda(adult_dataset.n),
                zgya_lambda=zgya_paper_lambda(adult_dataset.n),
                scale_features=True,
            )
            suites[k] = run_suite(adult_dataset, config)
        return suites

    suites = benchmark.pedantic(pipeline, rounds=1, iterations=1)
    text = render_fairness_table(
        suites,
        title=f"Table 6: fairness on Adult (n={adult_dataset.n}, {seeds} seeds)",
    )
    write_result("table6_adult_fairness.txt", text)
    emit("Table 6", text)

    # Shape assertions: FairKM improves mean fairness over K-Means(N) at
    # both k, by a clear margin at k=5 (paper: ≈35-45 %).
    for k in (5, 15):
        suite = suites[k]
        assert suite.fairkm.fairness.mean.ae < suite.kmeans.fairness.mean.ae
    assert suites[5].improvement_pct("mean", "AE") > 15.0
    # Gender is the paper's strongest attribute for FairKM.
    assert suites[5].improvement_pct("sex", "AE") > 40.0
