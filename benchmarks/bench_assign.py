"""Assignment-service throughput: rows/second at serving scale.

Measures :class:`repro.api.Assigner` — the hot loop behind
``ClusterModel.assign`` and ``repro predict`` — on an Adult-shaped
problem (n = 10⁵ by default, d = 14, k = 15) across chunk sizes, and
checks that chunking never changes the labels.

Runs standalone (no pytest needed), which is how CI smoke-invokes it::

    PYTHONPATH=src python benchmarks/bench_assign.py --smoke
    PYTHONPATH=src python benchmarks/bench_assign.py --n 1000000

Output: ``results/assign_throughput.txt``.
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro.api import Assigner
from repro.experiments.paper import write_result
from repro.experiments.tables import format_table

CHUNK_SIZES = (256, 1024, 8192, 65536)


def run(n: int, d: int, k: int, repeats: int) -> str:
    rng = np.random.default_rng(0)
    centers = rng.normal(size=(k, d)) * 2.0
    points = rng.normal(size=(n, d))
    service = Assigner(centers)

    baseline = service.assign(points)
    rows = []
    for chunk in CHUNK_SIZES:
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            labels = service.assign(points, chunk_size=chunk)
            best = min(best, time.perf_counter() - start)
        if not np.array_equal(labels, baseline):
            raise AssertionError(f"chunk_size={chunk} changed the assignment")
        rows.append([f"{chunk}", f"{best * 1e3:.1f}", f"{n / best / 1e6:.2f}"])

    table = format_table(
        ["chunk_size", "best ms", "Mrows/s"],
        rows,
        title=f"Batch assignment throughput (n={n}, d={d}, k={k})",
    )
    return table


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=100_000, help="rows to assign")
    parser.add_argument("--d", type=int, default=14, help="feature dimensionality")
    parser.add_argument("--k", type=int, default=15, help="number of centers")
    parser.add_argument("--repeats", type=int, default=3, help="timing repeats (best wins)")
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny fast run (CI): n=20000, one repeat",
    )
    args = parser.parse_args(argv)
    n, repeats = (20_000, 1) if args.smoke else (args.n, args.repeats)
    table = run(n, args.d, args.k, repeats)
    print(table)
    write_result("assign_throughput.txt", table)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
