"""Assignment-service throughput: rows/second at serving scale.

Measures :class:`repro.api.Assigner` — the hot loop behind
``ClusterModel.assign`` and ``repro predict`` — on an Adult-shaped
problem (n = 10⁵ by default, d = 14, k = 15) across chunk sizes, and
checks that chunking never changes the labels.

Measurements go through the :mod:`repro.perf.harness` emitter: the
machine-readable record is ``results/BENCH_assign_chunks.json`` and the
human-readable ``results/assign_throughput.txt`` is rendered *from* that
JSON (one code path, two formats). The jobs axis lives in
``repro bench`` / ``results/BENCH_assign.json``; this bench sweeps the
chunk-size axis at jobs=1.

Runs standalone (no pytest needed), which is how CI smoke-invokes it::

    PYTHONPATH=src python benchmarks/bench_assign.py --smoke
    PYTHONPATH=src python benchmarks/bench_assign.py --n 1000000
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro.api import Assigner
from repro.experiments.paper import write_result
from repro.perf.harness import BenchRecord, bench_payload, render_bench, write_bench

CHUNK_SIZES = (256, 1024, 8192, 65536)


def run(n: int, d: int, k: int, repeats: int) -> list[BenchRecord]:
    rng = np.random.default_rng(0)
    centers = rng.normal(size=(k, d)) * 2.0
    points = rng.normal(size=(n, d))
    service = Assigner(centers)

    baseline = service.assign(points)
    records = []
    for chunk in CHUNK_SIZES:
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            labels = service.assign(points, chunk_size=chunk)
            best = min(best, time.perf_counter() - start)
        if not np.array_equal(labels, baseline):
            raise AssertionError(f"chunk_size={chunk} changed the assignment")
        records.append(
            BenchRecord(
                f"assign[chunk={chunk}]", n, k, 1,
                best, n / best if best > 0 else 0.0,
                extra={"d": d, "chunk_size": chunk},
            )
        )
    # The schema's speedup field means "vs the jobs=1 record of the same
    # workload" — each chunk size here IS its own jobs=1 baseline, so
    # speedup stays 1.0 and the cross-chunk ratio goes into extra.
    base = records[0].wall_s
    for record in records:
        if record.wall_s > 0:
            record.extra["vs_smallest_chunk"] = round(base / record.wall_s, 4)
    return records


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=100_000, help="rows to assign")
    parser.add_argument("--d", type=int, default=14, help="feature dimensionality")
    parser.add_argument("--k", type=int, default=15, help="number of centers")
    parser.add_argument("--repeats", type=int, default=3, help="timing repeats (best wins)")
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny fast run (CI): n=20000, one repeat",
    )
    args = parser.parse_args(argv)
    n, repeats = (20_000, 1) if args.smoke else (args.n, args.repeats)
    records = run(n, args.d, args.k, repeats)
    from repro.experiments.paper import RESULTS_DIR

    path = write_bench(RESULTS_DIR / "BENCH_assign_chunks.json", "assign_chunks", records)
    table = render_bench(bench_payload("assign_chunks", records))
    print(table)
    write_result("assign_throughput.txt", table)
    print(f"records: {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
