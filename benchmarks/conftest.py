"""Shared fixtures for the benchmark suite.

Scale knobs (also honoured by the CLI):

* ``REPRO_BENCH_SEEDS``   — seeds per configuration (default 3).
* ``REPRO_BENCH_ADULT_N`` — Adult rows before parity undersampling
  (default 6000).
* ``REPRO_BENCH_FULL=1``  — paper scale (100 seeds, 32 561 rows). Expect
  hours, not minutes.

Every bench prints its regenerated table/figure (visible with ``-s``) and
writes it under ``results/``.
"""

from __future__ import annotations

import pytest

from repro.experiments.paper import bench_scale, build_adult, build_kinematics


@pytest.fixture(scope="session")
def scale() -> tuple[int, int]:
    return bench_scale()


@pytest.fixture(scope="session")
def adult_dataset(scale):
    _, adult_n = scale
    return build_adult(adult_n)


@pytest.fixture(scope="session")
def kinematics_dataset():
    return build_kinematics()


@pytest.fixture(scope="session")
def seeds(scale) -> int:
    return scale[0]


def emit(title: str, text: str) -> None:
    """Print a labelled block (shown with pytest -s)."""
    print(f"\n{'#' * 70}\n# {title}\n{'#' * 70}\n{text}\n")
