"""Figures 5, 6 & 7 — Kinematics quality and fairness vs λ (§5.7).

Sweeps λ over the paper's [1000, 10000] range; asserts the documented
monotone trends (fairness improves, coherence degrades slowly). Output:
printed (with -s), ``results/fig5_6_7_lambda_sweep.txt`` and the raw CSV
series in ``results/fig5_6_7_lambda_sweep.csv``.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.paper import LAMBDA_GRID, render_lambda_figures
from repro.experiments.sweep import lambda_sweep

from conftest import emit


def test_fig5_6_7_lambda_sweep(benchmark, kinematics_dataset, seeds):
    def pipeline():
        return lambda_sweep(
            kinematics_dataset,
            LAMBDA_GRID,
            k=5,
            seeds=tuple(range(seeds)),
            scale_features=False,
            silhouette_sample=None,
        )

    sweep = benchmark.pedantic(pipeline, rounds=1, iterations=1)
    text = render_lambda_figures(sweep)
    emit("Figures 5-7", text)

    # §5.7 trends, assessed end-to-end across the grid (the paper reports
    # "gradual but steady" movement, so endpoints are the robust check):
    ae = sweep.series("AE")
    co = sweep.series("CO")
    assert ae[-1] <= ae[0] + 1e-9  # fairness improves with λ
    assert co[-1] >= co[0] - 1e-6  # coherence degrades with λ
    # Quantum of change is limited (paper: "the quantum of change is very
    # limited" for CO): less than 40 % degradation across a 10× λ range.
    assert co[-1] <= co[0] * 1.4
    # Fairness series are deviations: all non-negative, finite.
    for metric in ("AE", "AW", "ME", "MW"):
        values = np.array(sweep.series(metric))
        assert (values >= 0).all() and np.isfinite(values).all()
