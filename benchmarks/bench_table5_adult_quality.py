"""Table 5 — Adult clustering quality (CO / SH / DevC / DevO, k = 5 and 15).

Regenerates the paper's Table 5 rows for K-Means(N), Avg. ZGYA and FairKM
and times the full pipeline. Output: printed (with -s) and
``results/table5_adult_quality.txt``.
"""

from __future__ import annotations

from repro.experiments.paper import dataset_lambda, write_result, zgya_paper_lambda
from repro.experiments.runner import SuiteConfig, run_suite
from repro.experiments.tables import render_quality_table

from conftest import emit


def test_table5_adult_quality(benchmark, adult_dataset, seeds):
    def pipeline():
        suites = {}
        for k in (5, 15):
            config = SuiteConfig(
                k=k,
                seeds=tuple(range(seeds)),
                fairkm_lambda=dataset_lambda(adult_dataset.n),
                zgya_lambda=zgya_paper_lambda(adult_dataset.n),
                scale_features=True,
            )
            suites[k] = run_suite(adult_dataset, config)
        return suites

    suites = benchmark.pedantic(pipeline, rounds=1, iterations=1)
    text = render_quality_table(
        suites,
        title=f"Table 5: clustering quality on Adult "
        f"(n={adult_dataset.n}, {seeds} seeds)",
    )
    write_result("table5_adult_quality.txt", text)
    emit("Table 5", text)

    # Shape assertions from the paper: K-Means(N) wins CO and SH, ZGYA is
    # the worst on both, FairKM sits between.
    for k in (5, 15):
        suite = suites[k]
        assert suite.kmeans.co <= suite.fairkm.co + 1e-6
        assert suite.fairkm.co <= suite.zgya_avg_quality.co
        assert suite.fairkm.sh >= suite.zgya_avg_quality.sh
