"""Standalone entry point for the machine-readable benchmark harness.

Thin wrapper over :mod:`repro.perf.harness` (the same code path as
``repro bench``), kept so the benchmark suite can run without an
installed console script::

    PYTHONPATH=src python benchmarks/harness.py --smoke --jobs 2
    PYTHONPATH=src python benchmarks/harness.py assign --jobs 4
    PYTHONPATH=src python benchmarks/harness.py serve --smoke
    PYTHONPATH=src python benchmarks/harness.py compare old.json new.json

Output: schema-validated ``results/BENCH_engine.json`` /
``results/BENCH_assign.json`` / ``results/BENCH_serve.json`` plus the
rendered tables on stdout (``compare`` diffs two such files and exits
nonzero on rows/s regressions).
"""

from __future__ import annotations

import sys

from repro.cli import main


if __name__ == "__main__":
    raise SystemExit(main(["bench", *sys.argv[1:]]))
