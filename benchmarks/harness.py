"""Standalone entry point for the machine-readable benchmark harness.

Thin wrapper over :mod:`repro.perf.harness` (the same code path as
``repro bench``), kept so the benchmark suite can run without an
installed console script::

    PYTHONPATH=src python benchmarks/harness.py --smoke --jobs 2
    PYTHONPATH=src python benchmarks/harness.py assign --jobs 4

Output: schema-validated ``results/BENCH_engine.json`` /
``results/BENCH_assign.json`` plus the rendered tables on stdout.
"""

from __future__ import annotations

import sys

from repro.cli import main


if __name__ == "__main__":
    raise SystemExit(main(["bench", *sys.argv[1:]]))
