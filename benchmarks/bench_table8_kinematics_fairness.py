"""Table 8 — Kinematics fairness per problem-type attribute (k = 5).

Output: printed (with -s) and ``results/table8_kinematics_fairness.txt``.
"""

from __future__ import annotations

from repro.experiments.paper import dataset_lambda, write_result, zgya_paper_lambda
from repro.experiments.runner import SuiteConfig, run_suite
from repro.experiments.tables import render_fairness_table

from conftest import emit


def test_table8_kinematics_fairness(benchmark, kinematics_dataset, seeds):
    def pipeline():
        config = SuiteConfig(
            k=5,
            seeds=tuple(range(seeds)),
            fairkm_lambda=dataset_lambda(kinematics_dataset.n),
            zgya_lambda=zgya_paper_lambda(kinematics_dataset.n),
            scale_features=False,
            silhouette_sample=None,
        )
        return run_suite(kinematics_dataset, config)

    suite = benchmark.pedantic(pipeline, rounds=1, iterations=1)
    text = render_fairness_table(
        {5: suite}, title=f"Table 8: fairness on Kinematics ({seeds} seeds)"
    )
    write_result("table8_kinematics_fairness.txt", text)
    emit("Table 8", text)

    # Paper shape: FairKM strongly fairer than both baselines on the mean
    # block (paper: ≈85 % over the next-best; we assert a wide margin).
    assert suite.improvement_pct("mean", "AE") > 40.0
    assert suite.fairkm.fairness.mean.ae < suite.kmeans.fairness.mean.ae
    assert suite.fairkm.fairness.mean.mw < suite.kmeans.fairness.mean.mw
    # And it must win on every single type attribute for AE.
    for attr in suite.attribute_names:
        fair = suite.fairkm.fairness.attribute(attr).ae
        blind = suite.kmeans.fairness.attribute(attr).ae
        assert fair < blind
