"""Ablation A3 — initialization strategy and the λ heuristic (§5.4).

Two questions the paper leaves implicit:

* does FairKM's random-assignment init (Alg. 1 Step 1) matter vs
  k-means++ seeding?
* how good is the (n/k)² heuristic against a λ grid, measured by the
  fairness-per-coherence trade?

Output: ``results/ablation_init_lambda.txt``.
"""

from __future__ import annotations

from repro.core import FairKM, default_lambda
from repro.data import make_fair_problem
from repro.experiments.paper import write_result
from repro.experiments.tables import format_table
from repro.metrics import fairness_report

from conftest import emit

N, K = 900, 3


def _dataset():
    return make_fair_problem(
        N, n_latent=K, separation=2.2,
        categorical=[("a", 2, 0.85), ("b", 4, 0.6)], seed=0,
    )


def test_ablation_init_strategies(benchmark):
    ds = _dataset()
    features = ds.feature_matrix()
    cats, _ = ds.sensitive_specs()
    results = {}

    def sweep():
        for init in ("random", "kmeans++", "random_points"):
            per_seed = []
            for seed in range(3):
                r = FairKM(K, seed=seed, init=init).fit(features, categorical=cats)
                per_seed.append(r)
            results[init] = per_seed
        return results

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for init, runs in results.items():
        objective = sum(r.objective for r in runs) / len(runs)
        km = sum(r.kmeans_term for r in runs) / len(runs)
        iters = sum(r.n_iter for r in runs) / len(runs)
        rows.append([init, f"{objective:.1f}", f"{km:.1f}", f"{iters:.1f}"])
    text = format_table(
        ["init", "objective", "KM term", "iters"],
        rows,
        title=f"Ablation A3a: FairKM init strategies (n={N}, k={K}, 3 seeds)",
    )
    write_result("ablation_init.txt", text)
    emit("Ablation A3a (init)", text)
    # All inits should land within 20 % of each other's objective — the
    # round-robin point moves dominate the outcome, per the paper's
    # reliance on simple random initialization.
    objectives = [sum(r.objective for r in runs) / len(runs) for runs in results.values()]
    assert max(objectives) <= min(objectives) * 1.2


def test_ablation_lambda_heuristic(benchmark):
    ds = _dataset()
    features = ds.feature_matrix()
    cats, _ = ds.sensitive_specs()
    sens = ds.sensitive_categorical()
    auto = default_lambda(N, K)
    grid = [auto / 100, auto / 10, auto, auto * 10, auto * 100]
    rows_data = {}

    def sweep():
        for lam in grid:
            r = FairKM(K, lambda_=lam, seed=0).fit(features, categorical=cats)
            report = fairness_report(sens, r.labels, K)
            rows_data[lam] = (r, report)
        return rows_data

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for lam in grid:
        r, report = rows_data[lam]
        marker = "  <- (n/k)^2" if lam == auto else ""
        rows.append(
            [f"{lam:.0f}{marker}", f"{r.kmeans_term:.1f}", f"{report.mean.ae:.4f}"]
        )
    text = format_table(
        ["lambda", "KM term", "mean AE"],
        rows,
        title="Ablation A3b: lambda grid around the (n/k)^2 heuristic",
    )
    write_result("ablation_lambda.txt", text)
    emit("Ablation A3b (lambda heuristic)", text)
    # The heuristic must capture most of the achievable fairness: within
    # the grid, AE at auto ≤ AE at auto/10, and coherence at auto is
    # better than at auto×100 (diminishing returns beyond).
    assert rows_data[auto][1].mean.ae <= rows_data[auto / 10][1].mean.ae + 1e-9
    assert rows_data[auto][0].kmeans_term <= rows_data[auto * 100][0].kmeans_term + 1e-6
