"""Legacy shim: this offline environment lacks the `wheel` package, so
`pip install -e .` (PEP 660) cannot build; `python setup.py develop`
performs the equivalent editable install. All metadata lives in
pyproject.toml."""
from setuptools import setup

setup()
